package dataplane

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Match selects packets for a flow rule. Zero-valued fields are wildcards,
// except InPort where the wildcard is PortAny and the label where the
// wildcard is HasLabel == false.
type Match struct {
	InPort PortID
	// HasLabel gates the Label field: when true the rule matches only
	// packets whose top of stack equals Label.
	HasLabel bool
	Label    Label
	// MatchNoLabel matches only packets with an empty label stack (used by
	// access-switch classification rules). Mutually exclusive with HasLabel.
	MatchNoLabel bool
	UE           string
	SrcIP        string
	DstPrefix    string
	// QoS < 0 is the wildcard.
	QoS int
}

// AnyMatch returns a Match that matches every packet.
func AnyMatch() Match { return Match{InPort: PortAny, QoS: -1} }

// Matches reports whether the packet arriving on inPort satisfies m.
func (m Match) Matches(inPort PortID, p *Packet) bool {
	if m.InPort != PortAny && m.InPort != inPort {
		return false
	}
	if m.HasLabel {
		top, ok := p.TopLabel()
		if !ok || top != m.Label {
			return false
		}
	}
	if m.MatchNoLabel && p.LabelDepth() != 0 {
		return false
	}
	if m.UE != "" && m.UE != p.UE {
		return false
	}
	if m.SrcIP != "" && m.SrcIP != p.SrcIP {
		return false
	}
	if m.DstPrefix != "" && m.DstPrefix != p.DstPrefix {
		return false
	}
	if m.QoS >= 0 && m.QoS != p.QoS {
		return false
	}
	return true
}

// String implements fmt.Stringer.
func (m Match) String() string {
	var parts []string
	if m.InPort != PortAny {
		parts = append(parts, fmt.Sprintf("in=%d", m.InPort))
	}
	if m.HasLabel {
		parts = append(parts, fmt.Sprintf("label=%d", m.Label))
	}
	if m.MatchNoLabel {
		parts = append(parts, "nolabel")
	}
	if m.UE != "" {
		parts = append(parts, "ue="+m.UE)
	}
	if m.SrcIP != "" {
		parts = append(parts, "src="+m.SrcIP)
	}
	if m.DstPrefix != "" {
		parts = append(parts, "dst="+m.DstPrefix)
	}
	if m.QoS >= 0 {
		parts = append(parts, fmt.Sprintf("qos=%d", m.QoS))
	}
	if len(parts) == 0 {
		return "any"
	}
	return strings.Join(parts, ",")
}

// ActionOp enumerates flow-rule action opcodes.
type ActionOp int

const (
	// OpOutput forwards the packet out of a port.
	OpOutput ActionOp = iota
	// OpPushLabel pushes a label onto the stack.
	OpPushLabel
	// OpPopLabel pops the top label.
	OpPopLabel
	// OpSwapLabel replaces the top label.
	OpSwapLabel
	// OpToController punts the packet to the controlling controller
	// (Packet-In).
	OpToController
	// OpDrop discards the packet.
	OpDrop
)

// String implements fmt.Stringer.
func (o ActionOp) String() string {
	switch o {
	case OpOutput:
		return "output"
	case OpPushLabel:
		return "push"
	case OpPopLabel:
		return "pop"
	case OpSwapLabel:
		return "swap"
	case OpToController:
		return "to-controller"
	case OpDrop:
		return "drop"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// Action is one instruction in a rule's action list.
type Action struct {
	Op    ActionOp
	Port  PortID // for OpOutput
	Label Label  // for OpPushLabel / OpSwapLabel
}

// Output constructs an output action.
func Output(port PortID) Action { return Action{Op: OpOutput, Port: port} }

// Push constructs a push-label action.
func Push(l Label) Action { return Action{Op: OpPushLabel, Label: l} }

// Pop constructs a pop-label action.
func Pop() Action { return Action{Op: OpPopLabel} }

// Swap constructs a swap-label action.
func Swap(l Label) Action { return Action{Op: OpSwapLabel, Label: l} }

// ToController constructs a punt-to-controller action.
func ToController() Action { return Action{Op: OpToController} }

// Drop constructs a drop action.
func Drop() Action { return Action{Op: OpDrop} }

// String implements fmt.Stringer.
func (a Action) String() string {
	switch a.Op {
	case OpOutput:
		return fmt.Sprintf("output:%d", a.Port)
	case OpPushLabel:
		return fmt.Sprintf("push:%d", a.Label)
	case OpSwapLabel:
		return fmt.Sprintf("swap:%d", a.Label)
	default:
		return a.Op.String()
	}
}

// Rule is a prioritized match-action flow entry. Higher Priority wins;
// ties break by insertion order (older first), mirroring OpenFlow.
type Rule struct {
	Priority int
	Match    Match
	Actions  []Action
	// Version tags the rule for consistent path updates (§6): packets of a
	// flow are matched against rules of their own version during updates.
	Version int
	// Owner records the installing controller, for accounting.
	Owner string
	// Demand is the bandwidth (Mbps) this rule's flow reserves on the link
	// behind its output port; 0 means best-effort. Reservations are taken
	// at install time and released at removal (admission control for the
	// §3.2 available-bandwidth metrics).
	Demand float64

	seq uint64
	// dead marks a rule removed through the owner index but not yet
	// compacted out of the ordered slice (a tombstone).
	dead bool
}

// String implements fmt.Stringer.
func (r *Rule) String() string {
	acts := make([]string, len(r.Actions))
	for i, a := range r.Actions {
		acts[i] = a.String()
	}
	return fmt.Sprintf("prio=%d match[%s] actions[%s] v%d", r.Priority, r.Match, strings.Join(acts, " "), r.Version)
}

// FlowTable is a concurrency-safe prioritized rule table.
//
// Installs append and owner-scoped removals go through a per-owner index,
// so both are O(1)/O(k) amortized instead of shifting or scanning the
// whole table — at 100k+ installed rules the previous
// sorted-insert/linear-scan layout dominated bearer-setup CPU. The
// priority ordering Lookup needs is restored lazily: removals leave
// tombstones and installs may unsort the slice, and the next ordered read
// (Lookup, Rules) compacts and re-sorts once.
type FlowTable struct {
	mu sync.RWMutex
	// rules is the ordered view, guarded by mu. It may hold tombstones
	// (dead > 0) and may be unsorted (dirty) between ordered reads.
	rules []*Rule
	// byOwner indexes live rules by owner tag in insertion order,
	// guarded by mu.
	byOwner map[string][]*Rule
	// live / dead count non-tombstoned and tombstoned entries of rules,
	// guarded by mu.
	live int
	dead int
	// dirty records that rules is not sorted, guarded by mu.
	dirty   bool
	nextSeq uint64
	// misses counts lookups that matched no rule.
	misses atomic.Uint64
	// hits counts successful lookups.
	hits atomic.Uint64
}

// NewFlowTable returns an empty table.
func NewFlowTable() *FlowTable { return &FlowTable{byOwner: make(map[string][]*Rule)} }

// Add installs a rule (copied). The rule is appended and indexed by owner;
// an append that breaks priority order only marks the table dirty — the
// next ordered read sorts once, so a burst of installs never pays a
// per-install shift of the whole table.
func (t *FlowTable) Add(r Rule) {
	t.mu.Lock()
	defer t.mu.Unlock()
	r.seq = t.nextSeq
	t.nextSeq++
	rc := r
	if !t.dirty && len(t.rules) > 0 {
		// Appending keeps the slice sorted only when the new rule sorts at
		// or after the current tail (priority desc, seq asc).
		if t.rules[len(t.rules)-1].Priority < rc.Priority {
			t.dirty = true
		}
	}
	t.rules = append(t.rules, &rc)
	if t.byOwner == nil {
		t.byOwner = make(map[string][]*Rule)
	}
	t.byOwner[rc.Owner] = append(t.byOwner[rc.Owner], &rc)
	t.live++
}

// compactLocked restores the invariant ordered reads rely on: tombstones
// are dropped and, if installs unsorted the slice, it is re-sorted by
// (priority desc, insertion order asc). Caller holds the write lock.
func (t *FlowTable) compactLocked() {
	if t.dead > 0 {
		kept := t.rules[:0]
		for _, r := range t.rules {
			if !r.dead {
				kept = append(kept, r)
			}
		}
		for i := len(kept); i < len(t.rules); i++ {
			t.rules[i] = nil
		}
		t.rules = kept
		t.dead = 0
	}
	if t.dirty {
		sort.Slice(t.rules, func(i, j int) bool {
			if t.rules[i].Priority != t.rules[j].Priority {
				return t.rules[i].Priority > t.rules[j].Priority
			}
			return t.rules[i].seq < t.rules[j].seq
		})
		t.dirty = false
	}
}

// Lookup returns the highest-priority rule matching the packet, or nil.
func (t *FlowTable) Lookup(inPort PortID, p *Packet) *Rule {
	t.mu.RLock()
	if t.dirty || t.dead > 0 {
		t.mu.RUnlock()
		t.mu.Lock()
		t.compactLocked()
		r := t.lookupLocked(inPort, p)
		t.mu.Unlock()
		return r
	}
	r := t.lookupLocked(inPort, p)
	t.mu.RUnlock()
	return r
}

// lookupLocked scans the ordered slice; caller holds mu (either mode) with
// the table compacted.
func (t *FlowTable) lookupLocked(inPort PortID, p *Packet) *Rule {
	for _, r := range t.rules {
		if r.Match.Matches(inPort, p) {
			t.hits.Add(1)
			return r
		}
	}
	t.misses.Add(1)
	return nil
}

// Len reports the number of installed rules.
func (t *FlowTable) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.live
}

// Rules returns a snapshot of the installed rules in priority order.
func (t *FlowTable) Rules() []*Rule {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.compactLocked()
	out := make([]*Rule, len(t.rules))
	copy(out, t.rules)
	return out
}

// TakeIf deletes all rules for which pred returns true and returns them in
// priority order.
func (t *FlowTable) TakeIf(pred func(*Rule) bool) []*Rule {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.compactLocked()
	kept := t.rules[:0]
	var removed []*Rule
	for _, r := range t.rules {
		if pred(r) {
			removed = append(removed, r)
		} else {
			kept = append(kept, r)
		}
	}
	for i := len(kept); i < len(t.rules); i++ {
		t.rules[i] = nil
	}
	t.rules = kept
	t.live = len(kept)
	for _, r := range removed {
		t.unindexLocked(r)
	}
	return removed
}

// TakeOwnerIf deletes owner's rules for which pred returns true (nil
// matches all of them) and returns them in insertion order. This is the
// O(k) fast path behind every owner-scoped removal: only the owner's own
// bucket is visited, and the ordered slice keeps tombstones until the next
// ordered read compacts.
func (t *FlowTable) TakeOwnerIf(owner string, pred func(*Rule) bool) []*Rule {
	t.mu.Lock()
	defer t.mu.Unlock()
	bucket := t.byOwner[owner]
	if len(bucket) == 0 {
		return nil
	}
	kept := bucket[:0]
	var removed []*Rule
	for _, r := range bucket {
		if pred == nil || pred(r) {
			r.dead = true
			removed = append(removed, r)
		} else {
			kept = append(kept, r)
		}
	}
	if len(kept) == 0 {
		delete(t.byOwner, owner)
	} else {
		for i := len(kept); i < len(bucket); i++ {
			bucket[i] = nil
		}
		t.byOwner[owner] = kept
	}
	t.dead += len(removed)
	t.live -= len(removed)
	// Amortization: once tombstones outnumber live rules the next ordered
	// read would pay for them anyway, so fold the compaction in here.
	if t.dead > t.live {
		t.compactLocked()
	}
	return removed
}

// unindexLocked removes a rule pointer from its owner bucket; caller holds
// the write lock.
func (t *FlowTable) unindexLocked(r *Rule) {
	bucket := t.byOwner[r.Owner]
	for i, br := range bucket {
		if br == r {
			bucket = append(bucket[:i], bucket[i+1:]...)
			break
		}
	}
	if len(bucket) == 0 {
		delete(t.byOwner, r.Owner)
	} else {
		t.byOwner[r.Owner] = bucket
	}
}

// RemoveIf deletes all rules for which pred returns true, returning the
// number removed.
func (t *FlowTable) RemoveIf(pred func(*Rule) bool) int {
	return len(t.TakeIf(pred))
}

// RemoveByOwner deletes all rules installed by owner.
func (t *FlowTable) RemoveByOwner(owner string) int {
	return len(t.TakeOwnerIf(owner, nil))
}

// RemoveVersion deletes all rules with the given version.
func (t *FlowTable) RemoveVersion(v int) int {
	return t.RemoveIf(func(r *Rule) bool { return r.Version == v })
}

// Clear removes every rule.
func (t *FlowTable) Clear() {
	t.RemoveIf(func(*Rule) bool { return true })
}

// Stats returns (hits, misses) lookup counters.
func (t *FlowTable) Stats() (hits, misses uint64) {
	return t.hits.Load(), t.misses.Load()
}
