package dataplane

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Match selects packets for a flow rule. Zero-valued fields are wildcards,
// except InPort where the wildcard is PortAny and the label where the
// wildcard is HasLabel == false.
type Match struct {
	InPort PortID
	// HasLabel gates the Label field: when true the rule matches only
	// packets whose top of stack equals Label.
	HasLabel bool
	Label    Label
	// MatchNoLabel matches only packets with an empty label stack (used by
	// access-switch classification rules). Mutually exclusive with HasLabel.
	MatchNoLabel bool
	UE           string
	SrcIP        string
	DstPrefix    string
	// QoS < 0 is the wildcard.
	QoS int
}

// AnyMatch returns a Match that matches every packet.
func AnyMatch() Match { return Match{InPort: PortAny, QoS: -1} }

// Matches reports whether the packet arriving on inPort satisfies m.
func (m Match) Matches(inPort PortID, p *Packet) bool {
	if m.InPort != PortAny && m.InPort != inPort {
		return false
	}
	if m.HasLabel {
		top, ok := p.TopLabel()
		if !ok || top != m.Label {
			return false
		}
	}
	if m.MatchNoLabel && p.LabelDepth() != 0 {
		return false
	}
	if m.UE != "" && m.UE != p.UE {
		return false
	}
	if m.SrcIP != "" && m.SrcIP != p.SrcIP {
		return false
	}
	if m.DstPrefix != "" && m.DstPrefix != p.DstPrefix {
		return false
	}
	if m.QoS >= 0 && m.QoS != p.QoS {
		return false
	}
	return true
}

// String implements fmt.Stringer.
func (m Match) String() string {
	var parts []string
	if m.InPort != PortAny {
		parts = append(parts, fmt.Sprintf("in=%d", m.InPort))
	}
	if m.HasLabel {
		parts = append(parts, fmt.Sprintf("label=%d", m.Label))
	}
	if m.MatchNoLabel {
		parts = append(parts, "nolabel")
	}
	if m.UE != "" {
		parts = append(parts, "ue="+m.UE)
	}
	if m.SrcIP != "" {
		parts = append(parts, "src="+m.SrcIP)
	}
	if m.DstPrefix != "" {
		parts = append(parts, "dst="+m.DstPrefix)
	}
	if m.QoS >= 0 {
		parts = append(parts, fmt.Sprintf("qos=%d", m.QoS))
	}
	if len(parts) == 0 {
		return "any"
	}
	return strings.Join(parts, ",")
}

// ActionOp enumerates flow-rule action opcodes.
type ActionOp int

const (
	// OpOutput forwards the packet out of a port.
	OpOutput ActionOp = iota
	// OpPushLabel pushes a label onto the stack.
	OpPushLabel
	// OpPopLabel pops the top label.
	OpPopLabel
	// OpSwapLabel replaces the top label.
	OpSwapLabel
	// OpToController punts the packet to the controlling controller
	// (Packet-In).
	OpToController
	// OpDrop discards the packet.
	OpDrop
)

// String implements fmt.Stringer.
func (o ActionOp) String() string {
	switch o {
	case OpOutput:
		return "output"
	case OpPushLabel:
		return "push"
	case OpPopLabel:
		return "pop"
	case OpSwapLabel:
		return "swap"
	case OpToController:
		return "to-controller"
	case OpDrop:
		return "drop"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// Action is one instruction in a rule's action list.
type Action struct {
	Op    ActionOp
	Port  PortID // for OpOutput
	Label Label  // for OpPushLabel / OpSwapLabel
}

// Output constructs an output action.
func Output(port PortID) Action { return Action{Op: OpOutput, Port: port} }

// Push constructs a push-label action.
func Push(l Label) Action { return Action{Op: OpPushLabel, Label: l} }

// Pop constructs a pop-label action.
func Pop() Action { return Action{Op: OpPopLabel} }

// Swap constructs a swap-label action.
func Swap(l Label) Action { return Action{Op: OpSwapLabel, Label: l} }

// ToController constructs a punt-to-controller action.
func ToController() Action { return Action{Op: OpToController} }

// Drop constructs a drop action.
func Drop() Action { return Action{Op: OpDrop} }

// String implements fmt.Stringer.
func (a Action) String() string {
	switch a.Op {
	case OpOutput:
		return fmt.Sprintf("output:%d", a.Port)
	case OpPushLabel:
		return fmt.Sprintf("push:%d", a.Label)
	case OpSwapLabel:
		return fmt.Sprintf("swap:%d", a.Label)
	default:
		return a.Op.String()
	}
}

// Rule is a prioritized match-action flow entry. Higher Priority wins;
// ties break by insertion order (older first), mirroring OpenFlow.
type Rule struct {
	Priority int
	Match    Match
	Actions  []Action
	// Version tags the rule for consistent path updates (§6): packets of a
	// flow are matched against rules of their own version during updates.
	Version int
	// Owner records the installing controller, for accounting.
	Owner string
	// Demand is the bandwidth (Mbps) this rule's flow reserves on the link
	// behind its output port; 0 means best-effort. Reservations are taken
	// at install time and released at removal (admission control for the
	// §3.2 available-bandwidth metrics).
	Demand float64

	seq uint64
}

// String implements fmt.Stringer.
func (r *Rule) String() string {
	acts := make([]string, len(r.Actions))
	for i, a := range r.Actions {
		acts[i] = a.String()
	}
	return fmt.Sprintf("prio=%d match[%s] actions[%s] v%d", r.Priority, r.Match, strings.Join(acts, " "), r.Version)
}

// FlowTable is a concurrency-safe prioritized rule table.
type FlowTable struct {
	mu      sync.RWMutex
	rules   []*Rule
	nextSeq uint64
	// Misses counts lookups that matched no rule.
	misses uint64
	// Hits counts successful lookups.
	hits uint64
}

// NewFlowTable returns an empty table.
func NewFlowTable() *FlowTable { return &FlowTable{} }

// Add installs a rule (copied) and keeps the table sorted by priority desc,
// then insertion order asc. The new rule carries the highest seq, so its
// slot is directly after the existing rules of priority >= r.Priority — a
// binary search plus one shift, not a full re-sort (at 100k+ installed
// rules a per-install sort dominates bearer-setup latency).
func (t *FlowTable) Add(r Rule) {
	t.mu.Lock()
	defer t.mu.Unlock()
	r.seq = t.nextSeq
	t.nextSeq++
	rc := r
	i := sort.Search(len(t.rules), func(i int) bool {
		return t.rules[i].Priority < rc.Priority
	})
	t.rules = append(t.rules, nil)
	copy(t.rules[i+1:], t.rules[i:])
	t.rules[i] = &rc
}

// Lookup returns the highest-priority rule matching the packet, or nil.
func (t *FlowTable) Lookup(inPort PortID, p *Packet) *Rule {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, r := range t.rules {
		if r.Match.Matches(inPort, p) {
			t.hits++
			return r
		}
	}
	t.misses++
	return nil
}

// Len reports the number of installed rules.
func (t *FlowTable) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rules)
}

// Rules returns a snapshot of the installed rules.
func (t *FlowTable) Rules() []*Rule {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]*Rule, len(t.rules))
	copy(out, t.rules)
	return out
}

// TakeIf deletes all rules for which pred returns true and returns them.
func (t *FlowTable) TakeIf(pred func(*Rule) bool) []*Rule {
	t.mu.Lock()
	defer t.mu.Unlock()
	kept := t.rules[:0]
	var removed []*Rule
	for _, r := range t.rules {
		if pred(r) {
			removed = append(removed, r)
		} else {
			kept = append(kept, r)
		}
	}
	for i := len(kept); i < len(t.rules); i++ {
		t.rules[i] = nil
	}
	t.rules = kept
	return removed
}

// RemoveIf deletes all rules for which pred returns true, returning the
// number removed.
func (t *FlowTable) RemoveIf(pred func(*Rule) bool) int {
	return len(t.TakeIf(pred))
}

// RemoveByOwner deletes all rules installed by owner.
func (t *FlowTable) RemoveByOwner(owner string) int {
	return t.RemoveIf(func(r *Rule) bool { return r.Owner == owner })
}

// RemoveVersion deletes all rules with the given version.
func (t *FlowTable) RemoveVersion(v int) int {
	return t.RemoveIf(func(r *Rule) bool { return r.Version == v })
}

// Clear removes every rule.
func (t *FlowTable) Clear() {
	t.RemoveIf(func(*Rule) bool { return true })
}

// Stats returns (hits, misses) lookup counters.
func (t *FlowTable) Stats() (hits, misses uint64) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.hits, t.misses
}
