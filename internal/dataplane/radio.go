package dataplane

import (
	"fmt"
	"math"
	"sort"
)

// GeoPoint is a planar location for base stations. The evaluation assigns
// geographic locations to BS groups to preserve neighborhood relationships
// (§7.1), which the mobility model uses to generate handovers.
type GeoPoint struct {
	X, Y float64
}

// Dist returns Euclidean distance between two points.
func (g GeoPoint) Dist(o GeoPoint) float64 {
	dx, dy := g.X-o.X, g.Y-o.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// BaseStation models an eNodeB. UE↔BS protocols are unchanged in SoftMoW
// (§2.1), so base stations carry only identity, location and group
// membership; radio scheduling is out of scope.
type BaseStation struct {
	ID       DeviceID
	Loc      GeoPoint
	GroupID  DeviceID
	// AdvertisedGBS is the border G-BS ID broadcast on the physical
	// broadcast channel for inter-region handover targeting (§5.2); empty
	// for internal base stations.
	AdvertisedGBS DeviceID
}

// GroupTopology enumerates intra-group interconnects (§2.1: "different
// topologies (e.g., ring, mesh, and spoke-hub)").
type GroupTopology int

const (
	// TopoRing is the evaluation default (§7.1: "at most 6 inferred base
	// stations organized in a ring topology").
	TopoRing GroupTopology = iota
	// TopoMesh connects every base-station pair in the group directly.
	TopoMesh
	// TopoHub stars the group around its first base station.
	TopoHub
)

// String implements fmt.Stringer.
func (t GroupTopology) String() string {
	switch t {
	case TopoRing:
		return "ring"
	case TopoMesh:
		return "mesh"
	case TopoHub:
		return "spoke-hub"
	default:
		return fmt.Sprintf("topo(%d)", int(t))
	}
}

// MaxGroupSize is the paper's BS-group size bound (§7.1).
const MaxGroupSize = 6

// BSGroup organizes up to MaxGroupSize base stations behind one access
// switch for intra-group fast paths (§2.1).
type BSGroup struct {
	ID       DeviceID
	Topology GroupTopology
	// AccessSwitch performs fine-grained packet classification for all
	// member base stations.
	AccessSwitch DeviceID
	members      []DeviceID
}

// NewBSGroup creates an empty group attached to the given access switch.
func NewBSGroup(id DeviceID, topo GroupTopology, access DeviceID) *BSGroup {
	return &BSGroup{ID: id, Topology: topo, AccessSwitch: access}
}

// AddMember appends a base station; it fails once the group is full.
func (g *BSGroup) AddMember(bs DeviceID) error {
	if len(g.members) >= MaxGroupSize {
		return fmt.Errorf("dataplane: group %s full (max %d)", g.ID, MaxGroupSize)
	}
	g.members = append(g.members, bs)
	return nil
}

// Members returns the member base stations in insertion order.
func (g *BSGroup) Members() []DeviceID {
	return append([]DeviceID(nil), g.members...)
}

// Size reports the member count.
func (g *BSGroup) Size() int { return len(g.members) }

// IntraGroupEdges materializes the group's interconnect as BS-ID pairs
// according to its topology. Ring: i—(i+1) mod n; mesh: all pairs;
// spoke-hub: member 0 to each other member. Groups of size < 2 have no
// edges.
func (g *BSGroup) IntraGroupEdges() [][2]DeviceID {
	n := len(g.members)
	if n < 2 {
		return nil
	}
	var edges [][2]DeviceID
	switch g.Topology {
	case TopoMesh:
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				edges = append(edges, [2]DeviceID{g.members[i], g.members[j]})
			}
		}
	case TopoHub:
		for i := 1; i < n; i++ {
			edges = append(edges, [2]DeviceID{g.members[0], g.members[i]})
		}
	default: // TopoRing
		for i := 0; i < n; i++ {
			j := (i + 1) % n
			if n == 2 && i == 1 {
				break // avoid a duplicate edge in a 2-ring
			}
			edges = append(edges, [2]DeviceID{g.members[i], g.members[j]})
		}
	}
	return edges
}

// Centroid computes the group's location from member base stations, used
// when assigning groups to geographic regions. locs maps BS ID to location.
func (g *BSGroup) Centroid(locs map[DeviceID]GeoPoint) GeoPoint {
	if len(g.members) == 0 {
		return GeoPoint{}
	}
	var c GeoPoint
	n := 0
	for _, id := range g.members {
		if p, ok := locs[id]; ok {
			c.X += p.X
			c.Y += p.Y
			n++
		}
	}
	if n == 0 {
		return GeoPoint{}
	}
	c.X /= float64(n)
	c.Y /= float64(n)
	return c
}

// Middlebox is a physical middlebox instance attached to a switch port
// (§2.1). Capacity and utilization feed the G-middlebox aggregation
// (§3.1: "identified with the sum of the processing capacities and
// utilization of constituent instances").
type Middlebox struct {
	ID       DeviceID
	Type     MiddleboxType
	Attach   PortRef
	Capacity float64 // abstract processing units
	Load     float64 // current utilization in the same units
}

// Utilization returns Load/Capacity in [0,1] (0 for zero capacity).
func (m *Middlebox) Utilization() float64 {
	if m.Capacity <= 0 {
		return 0
	}
	u := m.Load / m.Capacity
	if u > 1 {
		u = 1
	}
	return u
}

// EgressPoint marks a switch port as an Internet egress: a peering with an
// ISP or content provider where interdomain routes are learned (§4.2).
type EgressPoint struct {
	ID     string
	Switch DeviceID
	Port   PortID
	// PeerDomain names the neighbor domain (ISP/CDN).
	PeerDomain string
}

// ServicePolicy is a partially ordered set of middlebox types that traffic
// must traverse (§2.1). Order lists the chain; traffic must visit the types
// in an order consistent with it.
type ServicePolicy struct {
	Name  string
	Chain []MiddleboxType
}

// Satisfied reports whether the visited middlebox sequence contains the
// policy chain as a subsequence (poset compliance for a totally ordered
// chain).
func (sp ServicePolicy) Satisfied(visited []MiddleboxType) bool {
	i := 0
	for _, v := range visited {
		if i < len(sp.Chain) && v == sp.Chain[i] {
			i++
		}
	}
	return i == len(sp.Chain)
}

// SortDeviceIDs sorts a slice of device IDs in place and returns it,
// giving deterministic iteration order to callers ranging over maps.
func SortDeviceIDs(ids []DeviceID) []DeviceID {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
