package dataplane

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkFlowTableLookup measures a hit in a 256-rule table (a loaded
// core switch).
func BenchmarkFlowTableLookup(b *testing.B) {
	ft := NewFlowTable()
	for i := 0; i < 256; i++ {
		ft.Add(Rule{
			Priority: i % 7,
			Match:    Match{InPort: PortAny, HasLabel: true, Label: Label(i + 1), QoS: -1},
			Actions:  []Action{Output(PortID(i%8 + 1))},
		})
	}
	p := &Packet{}
	p.PushLabel(200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ft.Lookup(3, p) == nil {
			b.Fatal("miss")
		}
	}
}

// BenchmarkTraversal measures one packet crossing a 32-switch
// label-switched path.
func BenchmarkTraversal(b *testing.B) {
	const n = 32
	net := NewNetwork()
	ids := make([]DeviceID, n)
	for i := range ids {
		ids[i] = DeviceID(fmt.Sprintf("SW%02d", i))
		net.AddSwitch(ids[i])
	}
	for i := 0; i+1 < n; i++ {
		if _, err := net.Connect(ids[i], ids[i+1], time.Millisecond, 1000); err != nil {
			b.Fatal(err)
		}
	}
	rp, _ := net.AddRadioPort(ids[0], "g")
	ep, _ := net.AddEgress("E", ids[n-1], "isp")
	net.Switch(ids[0]).Table.Add(Rule{Priority: 100,
		Match:   Match{InPort: rp.ID, MatchNoLabel: true, UE: "u", QoS: -1},
		Actions: []Action{Push(9), Output(1)}})
	for i := 1; i+1 < n; i++ {
		net.Switch(ids[i]).Table.Add(Rule{Priority: 50,
			Match:   Match{InPort: 1, HasLabel: true, Label: 9, QoS: -1},
			Actions: []Action{Output(2)}})
	}
	net.Switch(ids[n-1]).Table.Add(Rule{Priority: 50,
		Match:   Match{InPort: 1, HasLabel: true, Label: 9, QoS: -1},
		Actions: []Action{Pop(), Output(ep.Port)}})

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkt := &Packet{UE: "u"}
		res, err := net.Inject(ids[0], rp.ID, pkt)
		if err != nil || res.Disposition != DispEgressed {
			b.Fatalf("traversal failed: %v %v", res.Disposition, err)
		}
	}
}

// BenchmarkPacketLabelOps measures raw label stack manipulation.
func BenchmarkPacketLabelOps(b *testing.B) {
	p := &Packet{}
	for i := 0; i < b.N; i++ {
		p.PushLabel(Label(i + 1))
		p.SwapLabel(Label(i + 2))
		p.PopLabel()
	}
}
