package dataplane

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// ControllerHook receives data-plane events punted to the control plane.
// The southbound layer adapts this to protocol messages; tests may install
// function hooks directly.
type ControllerHook interface {
	// PacketIn is invoked when a rule punts a packet (or on a table miss
	// when the switch is configured to punt misses).
	PacketIn(sw DeviceID, inPort PortID, p *Packet)
	// PortStatus is invoked when a port's link changes state.
	PortStatus(sw DeviceID, port PortID, up bool)
}

// HookFuncs adapts plain functions to ControllerHook. Nil fields are
// ignored.
type HookFuncs struct {
	OnPacketIn   func(sw DeviceID, inPort PortID, p *Packet)
	OnPortStatus func(sw DeviceID, port PortID, up bool)
}

// PacketIn implements ControllerHook.
func (h HookFuncs) PacketIn(sw DeviceID, inPort PortID, p *Packet) {
	if h.OnPacketIn != nil {
		h.OnPacketIn(sw, inPort, p)
	}
}

// PortStatus implements ControllerHook.
func (h HookFuncs) PortStatus(sw DeviceID, port PortID, up bool) {
	if h.OnPortStatus != nil {
		h.OnPortStatus(sw, port, up)
	}
}

// Switch is a programmable data-plane switch: a set of ports plus a flow
// table. Switches do not know about controllers beyond the hook; all
// intelligence lives in the control plane (§2.1: "a fabric of simple core
// switches").
type Switch struct {
	ID    DeviceID
	Table *FlowTable
	// IsAccess marks base-station access switches that perform fine-grained
	// classification (§2.1).
	IsAccess bool
	// IsEgress marks switches hosting an Internet egress point.
	IsEgress bool
	// PuntMisses punts table-miss packets to the controller instead of
	// dropping them (default true, as in reactive OpenFlow deployments).
	PuntMisses bool

	mu    sync.RWMutex
	ports map[PortID]*Port
	hook  ControllerHook
}

// Port is one switch port, possibly attached to a link.
type Port struct {
	ID   PortID
	Link *Link
	// External marks ports that face outside the operator network (ISP or
	// peering); these become G-switch border ports in the abstraction.
	External bool
	// ExternalDomain names the peer domain for external ports.
	ExternalDomain string
	// Radio names the BS group served through this port on an access
	// switch; packets output here are delivered to UEs over the air.
	Radio DeviceID
}

// NewSwitch creates a switch with an empty flow table and no ports.
func NewSwitch(id DeviceID) *Switch {
	return &Switch{
		ID:         id,
		Table:      NewFlowTable(),
		PuntMisses: true,
		ports:      make(map[PortID]*Port),
	}
}

// SetHook installs the controller hook (may be nil).
func (s *Switch) SetHook(h ControllerHook) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hook = h
}

// Hook returns the installed controller hook, or nil.
func (s *Switch) Hook() ControllerHook {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.hook
}

// AddPort creates port id on the switch. It panics on duplicates: port
// layout is static configuration, and a duplicate is a topology bug.
func (s *Switch) AddPort(id PortID) *Port {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.ports[id]; dup {
		panic(fmt.Sprintf("dataplane: duplicate port %d on %s", id, s.ID))
	}
	p := &Port{ID: id}
	s.ports[id] = p
	return p
}

// NextFreePort allocates the lowest unused port number ≥ 1.
func (s *Switch) NextFreePort() PortID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for id := PortID(1); ; id++ {
		if _, used := s.ports[id]; !used {
			return id
		}
	}
}

// PortByID returns the port or nil.
func (s *Switch) PortByID(id PortID) *Port {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ports[id]
}

// Ports returns the switch's ports sorted by ID.
func (s *Switch) Ports() []*Port {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*Port, 0, len(s.ports))
	for _, p := range s.ports {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// NumPorts reports the number of ports.
func (s *Switch) NumPorts() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.ports)
}

// Link is a bidirectional physical link between two device ports, annotated
// with the metrics the vFabric abstraction exposes (§3.2).
type Link struct {
	A, B      PortRef
	Latency   time.Duration
	Bandwidth float64 // Mbps capacity

	mu       sync.Mutex
	reserved float64 // Mbps currently reserved by admitted paths
	up       bool
}

// NewLink creates an up link between two port refs.
func NewLink(a, b PortRef, latency time.Duration, bandwidthMbps float64) *Link {
	return &Link{A: a, B: b, Latency: latency, Bandwidth: bandwidthMbps, up: true}
}

// Up reports link state.
func (l *Link) Up() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.up
}

// SetUp changes link state.
func (l *Link) SetUp(up bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.up = up
}

// Available returns the unreserved bandwidth in Mbps.
func (l *Link) Available() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.up {
		return 0
	}
	return l.Bandwidth - l.reserved
}

// Reserve admits mbps of traffic onto the link; it fails without side
// effects if insufficient bandwidth remains or the link is down.
func (l *Link) Reserve(mbps float64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.up {
		return fmt.Errorf("dataplane: link %v-%v is down", l.A, l.B)
	}
	if l.reserved+mbps > l.Bandwidth {
		return fmt.Errorf("dataplane: link %v-%v has %.1f Mbps free, need %.1f",
			l.A, l.B, l.Bandwidth-l.reserved, mbps)
	}
	l.reserved += mbps
	return nil
}

// Release returns mbps of reserved bandwidth.
func (l *Link) Release(mbps float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.reserved -= mbps
	if l.reserved < 0 {
		l.reserved = 0
	}
}

// Other returns the far endpoint from the perspective of dev, and whether
// dev is actually an endpoint of the link.
func (l *Link) Other(dev DeviceID) (PortRef, bool) {
	switch dev {
	case l.A.Dev:
		return l.B, true
	case l.B.Dev:
		return l.A, true
	default:
		return PortRef{}, false
	}
}

// String implements fmt.Stringer.
func (l *Link) String() string {
	return fmt.Sprintf("%v<->%v lat=%v bw=%.0fMbps", l.A, l.B, l.Latency, l.Bandwidth)
}
