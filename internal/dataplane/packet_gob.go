package dataplane

import (
	"bytes"
	"encoding/gob"
)

// packetWire is the gob wire representation of Packet: identical to Packet
// but with the label stack exported.
type packetWire struct {
	UE                 string
	SrcIP              string
	DstPrefix          string
	QoS                int
	Labels             []Label
	Trace              []Hop
	MiddleboxesVisited []MiddleboxType
	MaxLabelDepth      int
}

// GobEncode implements gob.GobEncoder so the unexported label stack
// survives southbound transport.
func (p *Packet) GobEncode() ([]byte, error) {
	w := packetWire{
		UE: p.UE, SrcIP: p.SrcIP, DstPrefix: p.DstPrefix, QoS: p.QoS,
		Labels: p.labels, Trace: p.Trace,
		MiddleboxesVisited: p.MiddleboxesVisited, MaxLabelDepth: p.MaxLabelDepth,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (p *Packet) GobDecode(data []byte) error {
	var w packetWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	p.UE, p.SrcIP, p.DstPrefix, p.QoS = w.UE, w.SrcIP, w.DstPrefix, w.QoS
	p.labels = w.Labels
	p.Trace = w.Trace
	p.MiddleboxesVisited = w.MiddleboxesVisited
	p.MaxLabelDepth = w.MaxLabelDepth
	return nil
}
