package dataplane

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestPortPairNormalization(t *testing.T) {
	if NewPortPair(5, 2) != NewPortPair(2, 5) {
		t.Fatal("port pairs must be orientation-independent")
	}
	v := NewVFabric()
	v.Set(5, 2, PathMetrics{Hops: 3, Reachable: true})
	if m, ok := v.Get(2, 5); !ok || m.Hops != 3 {
		t.Fatalf("reversed lookup failed: %v %v", m, ok)
	}
}

func TestPathMetricsBetter(t *testing.T) {
	a := PathMetrics{Hops: 2, Latency: 10 * time.Millisecond, Reachable: true}
	b := PathMetrics{Hops: 3, Latency: time.Millisecond, Reachable: true}
	if !a.Better(b) {
		t.Fatal("fewer hops should win")
	}
	c := PathMetrics{Hops: 2, Latency: 5 * time.Millisecond, Reachable: true}
	if !c.Better(a) {
		t.Fatal("equal hops, lower latency should win")
	}
	unreach := PathMetrics{}
	if unreach.Better(a) {
		t.Fatal("unreachable can never be better")
	}
	if !a.Better(unreach) {
		t.Fatal("reachable beats unreachable")
	}
}

func TestVFabricPairsDeterministic(t *testing.T) {
	v := NewVFabric()
	v.Set(3, 1, PathMetrics{Reachable: true})
	v.Set(1, 2, PathMetrics{Reachable: true})
	v.Set(2, 3, PathMetrics{Reachable: true})
	p1 := v.Pairs()
	p2 := v.Pairs()
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("Pairs() must be deterministic")
		}
	}
	if p1[0] != NewPortPair(1, 2) {
		t.Fatalf("expected sorted order, got %v", p1)
	}
}

func TestVFabricClone(t *testing.T) {
	v := NewVFabric()
	v.Set(1, 2, PathMetrics{Bandwidth: 100, Reachable: true})
	c := v.Clone()
	c.Set(1, 2, PathMetrics{Bandwidth: 50, Reachable: true})
	if m, _ := v.Get(1, 2); m.Bandwidth != 100 {
		t.Fatal("clone must not alias")
	}
}

func TestVFabricDiffExceeds(t *testing.T) {
	old := NewVFabric()
	old.Set(1, 2, PathMetrics{Bandwidth: 100, Reachable: true})
	cur := old.Clone()
	if cur.DiffExceeds(old, 10) {
		t.Fatal("identical fabrics should not exceed threshold")
	}
	cur.Set(1, 2, PathMetrics{Bandwidth: 95, Reachable: true})
	if cur.DiffExceeds(old, 10) {
		t.Fatal("5 Mbps change below threshold 10")
	}
	cur.Set(1, 2, PathMetrics{Bandwidth: 50, Reachable: true})
	if !cur.DiffExceeds(old, 10) {
		t.Fatal("50 Mbps change must exceed threshold")
	}
	cur = old.Clone()
	cur.Set(1, 2, PathMetrics{Bandwidth: 100, Reachable: false})
	if !cur.DiffExceeds(old, 10) {
		t.Fatal("reachability change must trigger update")
	}
	cur = old.Clone()
	cur.Set(3, 4, PathMetrics{Reachable: true})
	if !cur.DiffExceeds(old, 10) {
		t.Fatal("new pair must trigger update")
	}
	if !cur.DiffExceeds(nil, 10) {
		t.Fatal("nonempty vs nil must trigger")
	}
	if NewVFabric().DiffExceeds(nil, 10) {
		t.Fatal("empty vs nil must not trigger")
	}
}

// Property: DiffExceeds is symmetric-ish for same-keyed fabrics — if |Δbw|
// per pair never exceeds the threshold, no trigger either direction.
func TestVFabricDiffQuick(t *testing.T) {
	f := func(bws []uint16, delta uint8, threshold uint8) bool {
		if len(bws) == 0 {
			return true
		}
		old := NewVFabric()
		cur := NewVFabric()
		for i, bw := range bws {
			a, b := PortID(i), PortID(i+1)
			old.Set(a, b, PathMetrics{Bandwidth: float64(bw), Reachable: true})
			cur.Set(a, b, PathMetrics{Bandwidth: float64(bw) + float64(uint16(delta)%threshold1(threshold)), Reachable: true})
		}
		th := float64(threshold1(threshold))
		exceeds := cur.DiffExceeds(old, th)
		// delta mod threshold is < threshold, so never exceeds
		return !exceeds
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func threshold1(t uint8) uint16 {
	if t == 0 {
		return 1
	}
	return uint16(t)
}

func TestVFabricString(t *testing.T) {
	v := NewVFabric()
	v.Set(1, 2, PathMetrics{Hops: 2, Latency: 10 * time.Millisecond, Bandwidth: 500, Reachable: true})
	s := v.String()
	if !strings.Contains(s, "1-2") || !strings.Contains(s, "2h") {
		t.Fatalf("vfabric string = %q", s)
	}
}

func TestGSwitchInfoPortByID(t *testing.T) {
	g := &GSwitchInfo{ID: "GS1", Ports: []GPort{{ID: 1}, {ID: 7, External: true}}}
	if p := g.PortByID(7); p == nil || !p.External {
		t.Fatalf("PortByID(7) = %+v", p)
	}
	if g.PortByID(99) != nil {
		t.Fatal("missing port should be nil")
	}
}

func TestGMiddleboxUtilization(t *testing.T) {
	g := &GMiddleboxInfo{Capacity: 200, Load: 50}
	if g.Utilization() != 0.25 {
		t.Fatalf("util = %v", g.Utilization())
	}
	g.Load = 500
	if g.Utilization() != 1 {
		t.Fatal("clamp")
	}
	if (&GMiddleboxInfo{}).Utilization() != 0 {
		t.Fatal("zero capacity")
	}
}
