package dataplane

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Network is the container for one physical data plane: switches, links,
// radio access elements, middleboxes and egress points. It provides
// wiring helpers and the packet-traversal engine.
type Network struct {
	mu sync.RWMutex
	// switches maps device IDs to switches, guarded by mu.
	switches map[DeviceID]*Switch
	// links is every link in insertion order, guarded by mu.
	links []*Link
	// linksByPort indexes links by either endpoint, guarded by mu.
	linksByPort map[PortRef]*Link
	// baseStations maps BS IDs to records, guarded by mu.
	baseStations map[DeviceID]*BaseStation
	// groups maps BS-group IDs to records, guarded by mu.
	groups map[DeviceID]*BSGroup
	// middleboxes maps middlebox IDs to records, guarded by mu.
	middleboxes map[DeviceID]*Middlebox
	// mbByPort indexes middleboxes by attachment port, guarded by mu.
	mbByPort map[PortRef]*Middlebox
	// egress maps egress names to egress points, guarded by mu.
	egress map[string]*EgressPoint

	// installFault, when set, is consulted before every rule install; a
	// non-nil return fails the install with no state change (fault
	// injection for failure-path testing). guarded by mu.
	installFault func(DeviceID, *Rule) error
}

// NewNetwork returns an empty network.
func NewNetwork() *Network {
	return &Network{
		switches:     make(map[DeviceID]*Switch),
		linksByPort:  make(map[PortRef]*Link),
		baseStations: make(map[DeviceID]*BaseStation),
		groups:       make(map[DeviceID]*BSGroup),
		middleboxes:  make(map[DeviceID]*Middlebox),
		mbByPort:     make(map[PortRef]*Middlebox),
		egress:       make(map[string]*EgressPoint),
	}
}

// AddSwitch registers a new switch with the given ID and returns it.
// Duplicate IDs panic: topology construction is static configuration.
func (n *Network) AddSwitch(id DeviceID) *Switch {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.switches[id]; dup {
		panic(fmt.Sprintf("dataplane: duplicate switch %s", id))
	}
	sw := NewSwitch(id)
	n.switches[id] = sw
	return sw
}

// Switch returns the switch or nil.
func (n *Network) Switch(id DeviceID) *Switch {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.switches[id]
}

// Switches returns all switches sorted by ID.
func (n *Network) Switches() []*Switch {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]*Switch, 0, len(n.switches))
	for _, s := range n.switches {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// NumSwitches reports the switch count.
func (n *Network) NumSwitches() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return len(n.switches)
}

// Connect creates a link between fresh ports on switches a and b and
// returns it. Latency/bandwidth annotate the link (§3.2 metrics).
func (n *Network) Connect(a, b DeviceID, latency time.Duration, bandwidthMbps float64) (*Link, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	sa, sb := n.switches[a], n.switches[b]
	if sa == nil || sb == nil {
		return nil, fmt.Errorf("dataplane: connect %s-%s: unknown switch", a, b)
	}
	pa := sa.AddPort(sa.NextFreePort())
	pb := sb.AddPort(sb.NextFreePort())
	l := NewLink(PortRef{a, pa.ID}, PortRef{b, pb.ID}, latency, bandwidthMbps)
	pa.Link = l
	pb.Link = l
	n.links = append(n.links, l)
	n.linksByPort[l.A] = l
	n.linksByPort[l.B] = l
	return l, nil
}

// Links returns all links (shared slice header copy; links themselves are
// shared and concurrency-safe).
func (n *Network) Links() []*Link {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return append([]*Link(nil), n.links...)
}

// LinkAt returns the link attached at a port ref, or nil.
func (n *Network) LinkAt(ref PortRef) *Link {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.linksByPort[ref]
}

// SetLinkState flips a link up/down and notifies both endpoint switches'
// controller hooks with PortStatus events.
func (n *Network) SetLinkState(l *Link, up bool) {
	l.SetUp(up)
	for _, ref := range []PortRef{l.A, l.B} {
		if sw := n.Switch(ref.Dev); sw != nil {
			if h := sw.Hook(); h != nil {
				h.PortStatus(ref.Dev, ref.Port, up)
			}
		}
	}
}

// AddBaseStation registers a base station.
func (n *Network) AddBaseStation(bs *BaseStation) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.baseStations[bs.ID] = bs
}

// BaseStation returns a base station or nil.
func (n *Network) BaseStation(id DeviceID) *BaseStation {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.baseStations[id]
}

// BaseStations returns all base stations sorted by ID.
func (n *Network) BaseStations() []*BaseStation {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]*BaseStation, 0, len(n.baseStations))
	for _, b := range n.baseStations {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// AddGroup registers a BS group.
func (n *Network) AddGroup(g *BSGroup) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.groups[g.ID] = g
}

// Group returns a BS group or nil.
func (n *Network) Group(id DeviceID) *BSGroup {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.groups[id]
}

// Groups returns all groups sorted by ID.
func (n *Network) Groups() []*BSGroup {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]*BSGroup, 0, len(n.groups))
	for _, g := range n.groups {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// AttachMiddlebox registers a middlebox on a fresh port of its switch.
func (n *Network) AttachMiddlebox(mb *Middlebox) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	sw := n.switches[mb.Attach.Dev]
	if sw == nil {
		return fmt.Errorf("dataplane: middlebox %s attaches to unknown switch %s", mb.ID, mb.Attach.Dev)
	}
	if mb.Attach.Port == 0 {
		p := sw.AddPort(sw.NextFreePort())
		mb.Attach.Port = p.ID
	}
	n.middleboxes[mb.ID] = mb
	n.mbByPort[mb.Attach] = mb
	return nil
}

// Middlebox returns a middlebox or nil.
func (n *Network) Middlebox(id DeviceID) *Middlebox {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.middleboxes[id]
}

// Middleboxes returns all middleboxes sorted by ID.
func (n *Network) Middleboxes() []*Middlebox {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]*Middlebox, 0, len(n.middleboxes))
	for _, m := range n.middleboxes {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// MiddleboxAt returns the middlebox attached at a port ref, or nil.
func (n *Network) MiddleboxAt(ref PortRef) *Middlebox {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.mbByPort[ref]
}

// AddRadioPort creates a fresh port on an access switch serving a BS
// group's radio side and returns it. Packets output on it are delivered to
// UEs; packets from UEs enter the switch on it.
func (n *Network) AddRadioPort(swID, groupID DeviceID) (*Port, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	sw := n.switches[swID]
	if sw == nil {
		return nil, fmt.Errorf("dataplane: radio port on unknown switch %s", swID)
	}
	p := sw.AddPort(sw.NextFreePort())
	p.Radio = groupID
	sw.IsAccess = true
	return p, nil
}

// AddEgress marks a fresh external port on a switch as an Internet egress
// point and returns it.
func (n *Network) AddEgress(id string, swID DeviceID, peerDomain string) (*EgressPoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	sw := n.switches[swID]
	if sw == nil {
		return nil, fmt.Errorf("dataplane: egress %s on unknown switch %s", id, swID)
	}
	p := sw.AddPort(sw.NextFreePort())
	p.External = true
	p.ExternalDomain = peerDomain
	sw.IsEgress = true
	ep := &EgressPoint{ID: id, Switch: swID, Port: p.ID, PeerDomain: peerDomain}
	n.egress[id] = ep
	return ep, nil
}

// Egress returns an egress point or nil.
func (n *Network) Egress(id string) *EgressPoint {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.egress[id]
}

// EgressPoints returns all egress points sorted by ID.
func (n *Network) EgressPoints() []*EgressPoint {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]*EgressPoint, 0, len(n.egress))
	for _, e := range n.egress {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// SetInstallFault installs (or clears, with nil) a hook consulted before
// every InstallRule; returning an error fails that install with no state
// change. Used to inject rule-install failures in tests and the chaos
// harness.
func (n *Network) SetInstallFault(f func(DeviceID, *Rule) error) {
	n.mu.Lock()
	n.installFault = f
	n.mu.Unlock()
}

// InstallRule installs r on a switch, reserving r.Demand Mbps on the link
// behind the rule's output port. Installation fails — leaving no state —
// when the reservation cannot be admitted.
func (n *Network) InstallRule(swID DeviceID, r Rule) error {
	sw := n.Switch(swID)
	if sw == nil {
		return fmt.Errorf("dataplane: install on unknown switch %s", swID)
	}
	n.mu.RLock()
	fault := n.installFault
	n.mu.RUnlock()
	if fault != nil {
		if err := fault(swID, &r); err != nil {
			return err
		}
	}
	if r.Demand > 0 {
		if l := n.outputLink(sw, r); l != nil {
			if err := l.Reserve(r.Demand); err != nil {
				return err
			}
		}
	}
	sw.Table.Add(r)
	return nil
}

// RemoveRulesIf removes matching rules from a switch, releasing their
// bandwidth reservations, and returns the number removed.
func (n *Network) RemoveRulesIf(swID DeviceID, pred func(*Rule) bool) int {
	sw := n.Switch(swID)
	if sw == nil {
		return 0
	}
	removed := sw.Table.TakeIf(pred)
	for _, r := range removed {
		if r.Demand > 0 {
			if l := n.outputLink(sw, *r); l != nil {
				l.Release(r.Demand)
			}
		}
	}
	return len(removed)
}

// RemoveRulesOwner removes owner's rules matching pred (nil matches all
// of them) from a switch, releasing their bandwidth reservations, and
// returns the number removed. Unlike RemoveRulesIf this goes through the
// flow table's per-owner index, so the cost is proportional to the
// owner's own rules rather than the whole table.
func (n *Network) RemoveRulesOwner(swID DeviceID, owner string, pred func(*Rule) bool) int {
	sw := n.Switch(swID)
	if sw == nil {
		return 0
	}
	removed := sw.Table.TakeOwnerIf(owner, pred)
	for _, r := range removed {
		if r.Demand > 0 {
			if l := n.outputLink(sw, *r); l != nil {
				l.Release(r.Demand)
			}
		}
	}
	return len(removed)
}

// outputLink resolves the link behind a rule's output port (nil for
// external, radio, middlebox or linkless ports).
func (n *Network) outputLink(sw *Switch, r Rule) *Link {
	for _, a := range r.Actions {
		if a.Op == OpOutput {
			if p := sw.PortByID(a.Port); p != nil && !p.External && p.Radio == "" {
				return p.Link
			}
			return nil
		}
	}
	return nil
}

// Neighbors returns, for switch id, pairs of (local port, far end) over up
// links, sorted by local port.
func (n *Network) Neighbors(id DeviceID) []Adjacency {
	sw := n.Switch(id)
	if sw == nil {
		return nil
	}
	var out []Adjacency
	for _, p := range sw.Ports() {
		if p.Link == nil || !p.Link.Up() {
			continue
		}
		far, ok := p.Link.Other(id)
		if !ok {
			continue
		}
		out = append(out, Adjacency{LocalPort: p.ID, Remote: far, Link: p.Link})
	}
	return out
}

// Adjacency is one usable neighbor relationship from a switch's viewpoint.
type Adjacency struct {
	LocalPort PortID
	Remote    PortRef
	Link      *Link
}
