package dataplane

import (
	"errors"
	"fmt"
	"time"
)

// Disposition describes how a packet's traversal ended.
type Disposition int

const (
	// DispDropped means an explicit drop action or a table miss on a
	// non-punting switch.
	DispDropped Disposition = iota
	// DispEgressed means the packet left via an external (egress) port.
	DispEgressed
	// DispPunted means a rule (or a table miss on a punting switch) sent
	// the packet to the controller.
	DispPunted
	// DispLooped means the TTL budget was exhausted (a forwarding loop).
	DispLooped
	// DispBlackholed means the packet was forwarded onto a down link or a
	// port with no link.
	DispBlackholed
	// DispDelivered means the packet was handed to a base-station group's
	// radio side for over-the-air delivery to a UE.
	DispDelivered
)

// String implements fmt.Stringer.
func (d Disposition) String() string {
	switch d {
	case DispDropped:
		return "dropped"
	case DispEgressed:
		return "egressed"
	case DispPunted:
		return "punted"
	case DispLooped:
		return "looped"
	case DispBlackholed:
		return "blackholed"
	case DispDelivered:
		return "delivered"
	default:
		return fmt.Sprintf("disposition(%d)", int(d))
	}
}

// TraversalResult summarizes one packet's trip through the data plane.
type TraversalResult struct {
	Disposition Disposition
	// Hops is the number of switch-to-switch forwarding steps taken inside
	// the operator network.
	Hops int
	// Latency accumulates link latencies along the path.
	Latency time.Duration
	// EgressPort is the final external port when Disposition is
	// DispEgressed.
	EgressPort PortRef
	// PuntedAt is where the packet went to the controller, when punted.
	PuntedAt PortRef
	// MaxLabelDepth is the maximum label-stack depth observed on any link
	// (the §4.3 invariant subject).
	MaxLabelDepth int
	// Packet is the (mutated) packet, with its Trace populated.
	Packet *Packet
}

// DefaultTTL bounds traversal length; the 321-switch evaluation topologies
// have diameters far below this.
const DefaultTTL = 64

// MiddleboxProcessingLatency is the modeled per-visit middlebox delay.
const MiddleboxProcessingLatency = time.Millisecond

// ErrNoIngress is returned when injecting at an unknown switch.
var ErrNoIngress = errors.New("dataplane: ingress switch not found")

// Inject sends packet p into switch sw via inPort (use PortAny for locally
// originated traffic, e.g. from a base station's access side) and walks the
// data plane until the packet egresses, drops, punts, loops out of TTL, or
// black-holes.
func (n *Network) Inject(swID DeviceID, inPort PortID, p *Packet) (TraversalResult, error) {
	res := TraversalResult{Packet: p}
	cur := n.Switch(swID)
	if cur == nil {
		return res, fmt.Errorf("%w: %s", ErrNoIngress, swID)
	}
	ttl := DefaultTTL
	for {
		if ttl == 0 {
			res.Disposition = DispLooped
			return res, nil
		}
		ttl--
		rule := cur.Table.Lookup(inPort, p)
		if rule == nil {
			if cur.PuntMisses {
				res.Disposition = DispPunted
				res.PuntedAt = PortRef{cur.ID, inPort}
				if h := cur.Hook(); h != nil {
					h.PacketIn(cur.ID, inPort, p)
				}
				return res, nil
			}
			res.Disposition = DispDropped
			return res, nil
		}
		var outPort PortID
		decided := false
	actions:
		for _, a := range rule.Actions {
			switch a.Op {
			case OpPushLabel:
				p.PushLabel(a.Label)
			case OpPopLabel:
				p.PopLabel()
			case OpSwapLabel:
				p.SwapLabel(a.Label)
			case OpOutput:
				outPort = a.Port
				decided = true
				break actions
			case OpToController:
				res.Disposition = DispPunted
				res.PuntedAt = PortRef{cur.ID, inPort}
				if h := cur.Hook(); h != nil {
					h.PacketIn(cur.ID, inPort, p)
				}
				return res, nil
			case OpDrop:
				res.Disposition = DispDropped
				return res, nil
			}
		}
		if !decided {
			// A rule with label ops but no output is a controller bug; the
			// physical behaviour is a drop.
			res.Disposition = DispDropped
			return res, nil
		}

		depth := p.LabelDepth()
		top, _ := p.TopLabel()
		p.Trace = append(p.Trace, Hop{
			Dev: cur.ID, InPort: inPort, OutPort: outPort,
			LabelDepth: depth, TopLabel: top,
		})

		port := cur.PortByID(outPort)
		if port == nil {
			res.Disposition = DispBlackholed
			return res, nil
		}
		// Middlebox ports have no link: the middlebox processes the packet
		// and hands it back to the same switch on the same port.
		if mb := n.MiddleboxAt(PortRef{cur.ID, outPort}); mb != nil {
			p.MiddleboxesVisited = append(p.MiddleboxesVisited, mb.Type)
			res.Latency += MiddleboxProcessingLatency
			inPort = outPort
			continue
		}
		if port.Radio != "" {
			res.Disposition = DispDelivered
			res.EgressPort = PortRef{cur.ID, outPort}
			return res, nil
		}
		if port.External {
			res.Disposition = DispEgressed
			res.EgressPort = PortRef{cur.ID, outPort}
			return res, nil
		}
		if port.Link == nil || !port.Link.Up() {
			res.Disposition = DispBlackholed
			return res, nil
		}
		far, ok := port.Link.Other(cur.ID)
		if !ok {
			res.Disposition = DispBlackholed
			return res, nil
		}

		// The packet crosses a physical link: this is where the label-depth
		// invariant is observable (§4.3).
		if depth > res.MaxLabelDepth {
			res.MaxLabelDepth = depth
		}
		res.Latency += port.Link.Latency
		res.Hops++

		next := n.Switch(far.Dev)
		if next == nil {
			res.Disposition = DispBlackholed
			return res, nil
		}
		cur = next
		inPort = far.Port
	}
}
