package dataplane

import (
	"fmt"
	"strings"
)

// Packet is a simulated data-plane packet. It carries the classification
// fields the SoftMoW access switches match on (UE, source, destination
// prefix, QoS class) and a label stack manipulated by flow-rule actions.
//
// With recursive label swapping (§4.3) the stack depth never exceeds one on
// any physical link; with the label-stacking baseline it grows with the
// hierarchy depth. The traversal engine records the observed maximum.
type Packet struct {
	// UE identifies the subscriber flow (used by access-switch
	// classification rules).
	UE string
	// SrcIP and DstPrefix are opaque address tokens; the evaluation treats
	// Internet destinations as prefix identifiers (11590 of them in Fig. 8).
	SrcIP     string
	DstPrefix string
	// QoS is the bearer QoS class identifier.
	QoS int

	labels []Label

	// Trace accumulates the hops taken, for assertions and debugging.
	Trace []Hop

	// MiddleboxesVisited records the middlebox types traversed, in order,
	// so service-policy poset compliance can be verified.
	MiddleboxesVisited []MiddleboxType

	// MaxLabelDepth is the maximum label-stack depth observed on any link.
	MaxLabelDepth int
}

// Hop records one forwarding step.
type Hop struct {
	Dev     DeviceID
	InPort  PortID
	OutPort PortID
	// LabelDepth is the stack depth when the packet left Dev.
	LabelDepth int
	// TopLabel is the top of stack when leaving Dev (NoLabel if empty).
	TopLabel Label
}

// PushLabel pushes l onto the packet's label stack.
func (p *Packet) PushLabel(l Label) {
	p.labels = append(p.labels, l)
	if len(p.labels) > p.MaxLabelDepth {
		p.MaxLabelDepth = len(p.labels)
	}
}

// PopLabel removes and returns the top label. ok is false on an empty
// stack (the packet is left unchanged).
func (p *Packet) PopLabel() (l Label, ok bool) {
	if len(p.labels) == 0 {
		return NoLabel, false
	}
	l = p.labels[len(p.labels)-1]
	p.labels = p.labels[:len(p.labels)-1]
	return l, true
}

// SwapLabel replaces the top label with l; if the stack is empty it pushes.
func (p *Packet) SwapLabel(l Label) {
	if len(p.labels) == 0 {
		p.PushLabel(l)
		return
	}
	p.labels[len(p.labels)-1] = l
}

// TopLabel returns the top of stack without modifying it.
func (p *Packet) TopLabel() (Label, bool) {
	if len(p.labels) == 0 {
		return NoLabel, false
	}
	return p.labels[len(p.labels)-1], true
}

// LabelDepth returns the current label-stack depth.
func (p *Packet) LabelDepth() int { return len(p.labels) }

// Labels returns a copy of the label stack, bottom first.
func (p *Packet) Labels() []Label {
	return append([]Label(nil), p.labels...)
}

// Clone deep-copies the packet (including trace).
func (p *Packet) Clone() *Packet {
	q := *p
	q.labels = append([]Label(nil), p.labels...)
	q.Trace = append([]Hop(nil), p.Trace...)
	q.MiddleboxesVisited = append([]MiddleboxType(nil), p.MiddleboxesVisited...)
	return &q
}

// Path returns the device IDs visited, in order.
func (p *Packet) Path() []DeviceID {
	ids := make([]DeviceID, len(p.Trace))
	for i, h := range p.Trace {
		ids[i] = h.Dev
	}
	return ids
}

// String implements fmt.Stringer for debugging output.
func (p *Packet) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "pkt ue=%s dst=%s labels=%v path=", p.UE, p.DstPrefix, p.labels)
	for i, h := range p.Trace {
		if i > 0 {
			b.WriteString("->")
		}
		b.WriteString(string(h.Dev))
	}
	return b.String()
}
