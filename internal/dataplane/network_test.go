package dataplane

import (
	"testing"
	"testing/quick"
	"time"
)

func mustConnect(t *testing.T, n *Network, a, b DeviceID) *Link {
	t.Helper()
	l, err := n.Connect(a, b, 5*time.Millisecond, 1000)
	if err != nil {
		t.Fatalf("connect %s-%s: %v", a, b, err)
	}
	return l
}

// buildLine builds SW1 - SW2 - SW3 with an egress on SW3.
func buildLine(t *testing.T) (*Network, *EgressPoint) {
	t.Helper()
	n := NewNetwork()
	for _, id := range []DeviceID{"SW1", "SW2", "SW3"} {
		n.AddSwitch(id)
	}
	mustConnect(t, n, "SW1", "SW2")
	mustConnect(t, n, "SW2", "SW3")
	ep, err := n.AddEgress("E1", "SW3", "isp-1")
	if err != nil {
		t.Fatal(err)
	}
	return n, ep
}

func TestConnectAllocatesPorts(t *testing.T) {
	n := NewNetwork()
	n.AddSwitch("A")
	n.AddSwitch("B")
	l := mustConnect(t, n, "A", "B")
	if l.A.Port != 1 || l.B.Port != 1 {
		t.Fatalf("first link should use port 1 on both ends: %v", l)
	}
	l2 := mustConnect(t, n, "A", "B")
	if l2.A.Port != 2 || l2.B.Port != 2 {
		t.Fatalf("second link should use port 2: %v", l2)
	}
	if n.Switch("A").NumPorts() != 2 {
		t.Fatalf("A ports = %d", n.Switch("A").NumPorts())
	}
	if n.LinkAt(PortRef{"A", 1}) != l {
		t.Fatal("LinkAt lookup broken")
	}
}

func TestConnectUnknownSwitch(t *testing.T) {
	n := NewNetwork()
	n.AddSwitch("A")
	if _, err := n.Connect("A", "ZZZ", 0, 0); err == nil {
		t.Fatal("expected error for unknown switch")
	}
}

func TestDuplicateSwitchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate switch")
		}
	}()
	n := NewNetwork()
	n.AddSwitch("A")
	n.AddSwitch("A")
}

func TestForwardToEgress(t *testing.T) {
	n, ep := buildLine(t)
	// SW1: out port 1 (to SW2); SW2: in 1 from SW1, out 2 to SW3; SW3: out
	// egress port.
	n.Switch("SW1").Table.Add(Rule{Priority: 1, Match: AnyMatch(), Actions: []Action{Output(1)}})
	n.Switch("SW2").Table.Add(Rule{Priority: 1, Match: AnyMatch(), Actions: []Action{Output(2)}})
	n.Switch("SW3").Table.Add(Rule{Priority: 1, Match: AnyMatch(), Actions: []Action{Output(ep.Port)}})

	p := &Packet{UE: "ue1", DstPrefix: "pfx"}
	res, err := n.Inject("SW1", PortAny, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Disposition != DispEgressed {
		t.Fatalf("disposition = %v", res.Disposition)
	}
	if res.Hops != 2 {
		t.Fatalf("hops = %d", res.Hops)
	}
	if res.Latency != 10*time.Millisecond {
		t.Fatalf("latency = %v", res.Latency)
	}
	if res.EgressPort.Dev != "SW3" {
		t.Fatalf("egress at %v", res.EgressPort)
	}
	path := p.Path()
	if len(path) != 3 || path[0] != "SW1" || path[2] != "SW3" {
		t.Fatalf("path = %v", path)
	}
}

func TestLabelSwapPath(t *testing.T) {
	n, ep := buildLine(t)
	// Classic label-switched path: SW1 classifies+pushes, SW2 swaps, SW3
	// pops and egresses.
	n.Switch("SW1").Table.Add(Rule{Priority: 5,
		Match:   Match{InPort: PortAny, MatchNoLabel: true, UE: "ue1", QoS: -1},
		Actions: []Action{Push(100), Output(1)}})
	n.Switch("SW2").Table.Add(Rule{Priority: 5,
		Match:   Match{InPort: PortAny, HasLabel: true, Label: 100, QoS: -1},
		Actions: []Action{Swap(200), Output(2)}})
	n.Switch("SW3").Table.Add(Rule{Priority: 5,
		Match:   Match{InPort: PortAny, HasLabel: true, Label: 200, QoS: -1},
		Actions: []Action{Pop(), Output(ep.Port)}})

	p := &Packet{UE: "ue1"}
	res, err := n.Inject("SW1", PortAny, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Disposition != DispEgressed {
		t.Fatalf("disposition = %v (packet %v)", res.Disposition, p)
	}
	if res.MaxLabelDepth != 1 {
		t.Fatalf("label depth on links = %d, want 1", res.MaxLabelDepth)
	}
	if p.LabelDepth() != 0 {
		t.Fatalf("packet should egress unlabeled, depth=%d", p.LabelDepth())
	}
}

func TestTableMissPunts(t *testing.T) {
	n, _ := buildLine(t)
	var punted bool
	n.Switch("SW1").SetHook(HookFuncs{
		OnPacketIn: func(sw DeviceID, in PortID, p *Packet) {
			punted = true
			if sw != "SW1" {
				t.Errorf("punt at %s", sw)
			}
		},
	})
	res, err := n.Inject("SW1", PortAny, &Packet{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Disposition != DispPunted || !punted {
		t.Fatalf("expected punt, got %v punted=%v", res.Disposition, punted)
	}
}

func TestTableMissDropWhenNotPunting(t *testing.T) {
	n, _ := buildLine(t)
	n.Switch("SW1").PuntMisses = false
	res, _ := n.Inject("SW1", PortAny, &Packet{})
	if res.Disposition != DispDropped {
		t.Fatalf("disposition = %v", res.Disposition)
	}
}

func TestForwardingLoopDetected(t *testing.T) {
	n := NewNetwork()
	n.AddSwitch("A")
	n.AddSwitch("B")
	mustConnect(t, n, "A", "B")
	n.Switch("A").Table.Add(Rule{Priority: 1, Match: AnyMatch(), Actions: []Action{Output(1)}})
	n.Switch("B").Table.Add(Rule{Priority: 1, Match: AnyMatch(), Actions: []Action{Output(1)}})
	res, _ := n.Inject("A", PortAny, &Packet{})
	if res.Disposition != DispLooped {
		t.Fatalf("disposition = %v", res.Disposition)
	}
}

func TestDownLinkBlackholes(t *testing.T) {
	n, _ := buildLine(t)
	n.Switch("SW1").Table.Add(Rule{Priority: 1, Match: AnyMatch(), Actions: []Action{Output(1)}})
	l := n.LinkAt(PortRef{"SW1", 1})
	n.SetLinkState(l, false)
	res, _ := n.Inject("SW1", PortAny, &Packet{})
	if res.Disposition != DispBlackholed {
		t.Fatalf("disposition = %v", res.Disposition)
	}
}

func TestSetLinkStateNotifiesBothEnds(t *testing.T) {
	n, _ := buildLine(t)
	var events []DeviceID
	hook := func(sw DeviceID, port PortID, up bool) {
		if up {
			t.Errorf("expected down event")
		}
		events = append(events, sw)
	}
	n.Switch("SW1").SetHook(HookFuncs{OnPortStatus: hook})
	n.Switch("SW2").SetHook(HookFuncs{OnPortStatus: hook})
	n.SetLinkState(n.LinkAt(PortRef{"SW1", 1}), false)
	if len(events) != 2 {
		t.Fatalf("events = %v", events)
	}
}

func TestOutputToUnknownPortBlackholes(t *testing.T) {
	n, _ := buildLine(t)
	n.Switch("SW1").Table.Add(Rule{Priority: 1, Match: AnyMatch(), Actions: []Action{Output(99)}})
	res, _ := n.Inject("SW1", PortAny, &Packet{})
	if res.Disposition != DispBlackholed {
		t.Fatalf("disposition = %v", res.Disposition)
	}
}

func TestRuleWithoutOutputDrops(t *testing.T) {
	n, _ := buildLine(t)
	n.Switch("SW1").Table.Add(Rule{Priority: 1, Match: AnyMatch(), Actions: []Action{Push(1)}})
	res, _ := n.Inject("SW1", PortAny, &Packet{})
	if res.Disposition != DispDropped {
		t.Fatalf("disposition = %v", res.Disposition)
	}
}

func TestExplicitToControllerAction(t *testing.T) {
	n, _ := buildLine(t)
	n.Switch("SW1").Table.Add(Rule{Priority: 1, Match: AnyMatch(), Actions: []Action{ToController()}})
	count := 0
	n.Switch("SW1").SetHook(HookFuncs{OnPacketIn: func(DeviceID, PortID, *Packet) { count++ }})
	res, _ := n.Inject("SW1", PortAny, &Packet{})
	if res.Disposition != DispPunted || count != 1 {
		t.Fatalf("disposition=%v punts=%d", res.Disposition, count)
	}
}

func TestInjectUnknownSwitch(t *testing.T) {
	n := NewNetwork()
	if _, err := n.Inject("nope", PortAny, &Packet{}); err == nil {
		t.Fatal("expected ErrNoIngress")
	}
}

func TestMiddleboxBounce(t *testing.T) {
	n, ep := buildLine(t)
	mb := &Middlebox{ID: "FW1", Type: MBFirewall, Attach: PortRef{Dev: "SW2"}, Capacity: 100}
	if err := n.AttachMiddlebox(mb); err != nil {
		t.Fatal(err)
	}
	// SW1 -> SW2; SW2 sends fresh traffic through the firewall port, and
	// firewall-returned traffic (same in-port) onward to SW3.
	n.Switch("SW1").Table.Add(Rule{Priority: 1, Match: AnyMatch(), Actions: []Action{Output(1)}})
	n.Switch("SW2").Table.Add(Rule{Priority: 5,
		Match:   Match{InPort: mb.Attach.Port, QoS: -1},
		Actions: []Action{Output(2)}})
	n.Switch("SW2").Table.Add(Rule{Priority: 1, Match: AnyMatch(), Actions: []Action{Output(mb.Attach.Port)}})
	n.Switch("SW3").Table.Add(Rule{Priority: 1, Match: AnyMatch(), Actions: []Action{Output(ep.Port)}})

	p := &Packet{UE: "u"}
	res, err := n.Inject("SW1", PortAny, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Disposition != DispEgressed {
		t.Fatalf("disposition = %v", res.Disposition)
	}
	if len(p.MiddleboxesVisited) != 1 || p.MiddleboxesVisited[0] != MBFirewall {
		t.Fatalf("middleboxes visited = %v", p.MiddleboxesVisited)
	}
	pol := ServicePolicy{Name: "fw", Chain: []MiddleboxType{MBFirewall}}
	if !pol.Satisfied(p.MiddleboxesVisited) {
		t.Fatal("policy should be satisfied")
	}
}

func TestServicePolicySubsequence(t *testing.T) {
	pol := ServicePolicy{Chain: []MiddleboxType{MBFirewall, MBDPI}}
	if !pol.Satisfied([]MiddleboxType{MBFirewall, MBCharging, MBDPI}) {
		t.Fatal("interleaved chain should satisfy")
	}
	if pol.Satisfied([]MiddleboxType{MBDPI, MBFirewall}) {
		t.Fatal("out-of-order chain must not satisfy")
	}
	if pol.Satisfied(nil) {
		t.Fatal("empty visit list must not satisfy nonempty chain")
	}
	if !(ServicePolicy{}).Satisfied(nil) {
		t.Fatal("empty chain is always satisfied")
	}
}

func TestLinkBandwidthReservation(t *testing.T) {
	l := NewLink(PortRef{"A", 1}, PortRef{"B", 1}, time.Millisecond, 100)
	if err := l.Reserve(60); err != nil {
		t.Fatal(err)
	}
	if got := l.Available(); got != 40 {
		t.Fatalf("available = %v", got)
	}
	if err := l.Reserve(50); err == nil {
		t.Fatal("over-reservation should fail")
	}
	l.Release(60)
	if got := l.Available(); got != 100 {
		t.Fatalf("available after release = %v", got)
	}
	l.Release(1000) // over-release clamps
	if got := l.Available(); got != 100 {
		t.Fatalf("over-release should clamp: %v", got)
	}
	l.SetUp(false)
	if l.Available() != 0 {
		t.Fatal("down link has no available bandwidth")
	}
	if err := l.Reserve(1); err == nil {
		t.Fatal("reserving on a down link should fail")
	}
}

func TestLinkOther(t *testing.T) {
	l := NewLink(PortRef{"A", 1}, PortRef{"B", 2}, 0, 0)
	if far, ok := l.Other("A"); !ok || far.Dev != "B" {
		t.Fatalf("Other(A) = %v %v", far, ok)
	}
	if far, ok := l.Other("B"); !ok || far.Dev != "A" {
		t.Fatalf("Other(B) = %v %v", far, ok)
	}
	if _, ok := l.Other("C"); ok {
		t.Fatal("Other(C) should be false")
	}
}

func TestNeighbors(t *testing.T) {
	n, _ := buildLine(t)
	adj := n.Neighbors("SW2")
	if len(adj) != 2 {
		t.Fatalf("neighbors = %d", len(adj))
	}
	n.SetLinkState(n.LinkAt(PortRef{"SW2", 1}), false)
	if adj := n.Neighbors("SW2"); len(adj) != 1 {
		t.Fatalf("down links must not appear: %v", adj)
	}
	if n.Neighbors("missing") != nil {
		t.Fatal("unknown switch should have nil neighbors")
	}
}

func TestBSGroupBasics(t *testing.T) {
	g := NewBSGroup("G1", TopoRing, "ASW1")
	for i := 0; i < MaxGroupSize; i++ {
		if err := g.AddMember(DeviceID(rune('a' + i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddMember("overflow"); err == nil {
		t.Fatal("group overflow should fail")
	}
	if g.Size() != MaxGroupSize {
		t.Fatalf("size = %d", g.Size())
	}
	edges := g.IntraGroupEdges()
	if len(edges) != MaxGroupSize {
		t.Fatalf("ring of %d has %d edges, want %d", MaxGroupSize, len(edges), MaxGroupSize)
	}
}

func TestBSGroupTopologies(t *testing.T) {
	mk := func(topo GroupTopology, n int) *BSGroup {
		g := NewBSGroup("G", topo, "A")
		for i := 0; i < n; i++ {
			g.AddMember(DeviceID(rune('a' + i)))
		}
		return g
	}
	if e := mk(TopoMesh, 4).IntraGroupEdges(); len(e) != 6 {
		t.Fatalf("mesh(4) edges = %d", len(e))
	}
	if e := mk(TopoHub, 4).IntraGroupEdges(); len(e) != 3 {
		t.Fatalf("hub(4) edges = %d", len(e))
	}
	if e := mk(TopoRing, 2).IntraGroupEdges(); len(e) != 1 {
		t.Fatalf("ring(2) edges = %d (duplicate edge bug)", len(e))
	}
	if e := mk(TopoRing, 1).IntraGroupEdges(); e != nil {
		t.Fatalf("ring(1) should have no edges")
	}
}

func TestBSGroupCentroid(t *testing.T) {
	g := NewBSGroup("G", TopoRing, "A")
	g.AddMember("b1")
	g.AddMember("b2")
	locs := map[DeviceID]GeoPoint{"b1": {0, 0}, "b2": {10, 20}}
	c := g.Centroid(locs)
	if c.X != 5 || c.Y != 10 {
		t.Fatalf("centroid = %v", c)
	}
	if (NewBSGroup("E", TopoRing, "A")).Centroid(locs) != (GeoPoint{}) {
		t.Fatal("empty group centroid should be origin")
	}
}

func TestMiddleboxUtilization(t *testing.T) {
	mb := &Middlebox{Capacity: 100, Load: 25}
	if mb.Utilization() != 0.25 {
		t.Fatalf("util = %v", mb.Utilization())
	}
	mb.Load = 200
	if mb.Utilization() != 1 {
		t.Fatal("utilization should clamp at 1")
	}
	if (&Middlebox{}).Utilization() != 0 {
		t.Fatal("zero capacity utilization should be 0")
	}
}

func TestPacketLabelOps(t *testing.T) {
	p := &Packet{}
	if _, ok := p.PopLabel(); ok {
		t.Fatal("pop on empty should fail")
	}
	p.SwapLabel(5) // swap on empty pushes
	if l, _ := p.TopLabel(); l != 5 {
		t.Fatalf("top = %d", l)
	}
	p.PushLabel(6)
	if p.MaxLabelDepth != 2 {
		t.Fatalf("max depth = %d", p.MaxLabelDepth)
	}
	q := p.Clone()
	q.PopLabel()
	if p.LabelDepth() != 2 {
		t.Fatal("clone must not share label stack")
	}
	labels := p.Labels()
	if len(labels) != 2 || labels[0] != 5 || labels[1] != 6 {
		t.Fatalf("labels = %v", labels)
	}
}

// Property: label push/pop sequences behave as a stack.
func TestPacketStackPropertyQuick(t *testing.T) {
	f := func(ops []uint8) bool {
		p := &Packet{}
		var model []Label
		for _, op := range ops {
			switch op % 3 {
			case 0:
				l := Label(op) + 1
				p.PushLabel(l)
				model = append(model, l)
			case 1:
				got, ok := p.PopLabel()
				if len(model) == 0 {
					if ok {
						return false
					}
				} else {
					want := model[len(model)-1]
					model = model[:len(model)-1]
					if !ok || got != want {
						return false
					}
				}
			case 2:
				top, ok := p.TopLabel()
				if len(model) == 0 {
					if ok {
						return false
					}
				} else if !ok || top != model[len(model)-1] {
					return false
				}
			}
		}
		return p.LabelDepth() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestGeoDist(t *testing.T) {
	if d := (GeoPoint{0, 0}).Dist(GeoPoint{3, 4}); d != 5 {
		t.Fatalf("dist = %v", d)
	}
}

func TestDeviceKindStrings(t *testing.T) {
	kinds := []DeviceKind{KindSwitch, KindGSwitch, KindBaseStation, KindGBS, KindMiddlebox, KindGMiddlebox, KindUnknown}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if seen[s] {
			t.Fatalf("duplicate kind string %q", s)
		}
		seen[s] = true
	}
}

func TestEgressRegistration(t *testing.T) {
	n, ep := buildLine(t)
	if got := n.Egress("E1"); got != ep {
		t.Fatal("egress lookup failed")
	}
	if len(n.EgressPoints()) != 1 {
		t.Fatal("egress list")
	}
	sw := n.Switch("SW3")
	if !sw.IsEgress {
		t.Fatal("switch should be marked egress")
	}
	p := sw.PortByID(ep.Port)
	if p == nil || !p.External || p.ExternalDomain != "isp-1" {
		t.Fatalf("egress port misconfigured: %+v", p)
	}
	if _, err := n.AddEgress("EX", "nope", "d"); err == nil {
		t.Fatal("egress on unknown switch should fail")
	}
}

func TestMiddleboxTypesEnumeration(t *testing.T) {
	ts := MiddleboxTypes()
	if len(ts) != int(numMiddleboxTypes) {
		t.Fatalf("types = %d", len(ts))
	}
	seen := map[string]bool{}
	for _, mt := range ts {
		if seen[mt.String()] {
			t.Fatalf("duplicate middlebox name %s", mt)
		}
		seen[mt.String()] = true
	}
}
