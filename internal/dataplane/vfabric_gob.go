package dataplane

import (
	"bytes"
	"encoding/gob"
)

// vfabricWire is the gob wire representation of VFabric.
type vfabricWire struct {
	Pairs   []PortPair
	Metrics []PathMetrics
}

// GobEncode implements gob.GobEncoder so fabrics survive southbound
// FeatureReply transport.
func (v *VFabric) GobEncode() ([]byte, error) {
	var w vfabricWire
	for _, pp := range v.Pairs() {
		w.Pairs = append(w.Pairs, pp)
		w.Metrics = append(w.Metrics, v.pairs[pp])
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (v *VFabric) GobDecode(data []byte) error {
	var w vfabricWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	v.pairs = make(map[PortPair]PathMetrics, len(w.Pairs))
	for i, pp := range w.Pairs {
		v.pairs[pp] = w.Metrics[i]
	}
	return nil
}
