package dataplane

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// vfabricWire is the gob wire representation of VFabric.
type vfabricWire struct {
	Pairs   []PortPair
	Metrics []PathMetrics
}

// GobEncode implements gob.GobEncoder so fabrics survive southbound
// FeatureReply transport.
func (v *VFabric) GobEncode() ([]byte, error) {
	var w vfabricWire
	for _, pp := range v.Pairs() {
		w.Pairs = append(w.Pairs, pp)
		w.Metrics = append(w.Metrics, v.pairs[pp])
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder. Malformed input (a crafted blob
// whose parallel slices disagree) must surface as an error, never a panic
// — the southbound decoder runs this over untrusted bytes.
func (v *VFabric) GobDecode(data []byte) error {
	var w vfabricWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	if len(w.Pairs) != len(w.Metrics) {
		return fmt.Errorf("dataplane: vfabric wire data has %d pairs but %d metrics", len(w.Pairs), len(w.Metrics))
	}
	v.pairs = make(map[PortPair]PathMetrics, len(w.Pairs))
	for i, pp := range w.Pairs {
		v.pairs[pp] = w.Metrics[i]
	}
	return nil
}
