package dataplane

import (
	"testing"
	"testing/quick"
)

func TestMatchWildcards(t *testing.T) {
	p := &Packet{UE: "ue1", SrcIP: "s", DstPrefix: "d", QoS: 3}
	if !AnyMatch().Matches(7, p) {
		t.Fatal("AnyMatch should match everything")
	}
	m := Match{InPort: 7, UE: "ue1", DstPrefix: "d", QoS: 3}
	if !m.Matches(7, p) {
		t.Fatal("exact match failed")
	}
	if m.Matches(8, p) {
		t.Fatal("in-port mismatch should fail")
	}
	if (Match{InPort: PortAny, UE: "other", QoS: -1}).Matches(7, p) {
		t.Fatal("UE mismatch should fail")
	}
	if (Match{InPort: PortAny, QoS: 9}).Matches(7, p) {
		t.Fatal("QoS mismatch should fail")
	}
}

func TestMatchLabels(t *testing.T) {
	p := &Packet{QoS: -0} // no labels yet
	noLabel := Match{InPort: PortAny, MatchNoLabel: true, QoS: -1}
	if !noLabel.Matches(1, p) {
		t.Fatal("MatchNoLabel should match an unlabeled packet")
	}
	p.PushLabel(42)
	if noLabel.Matches(1, p) {
		t.Fatal("MatchNoLabel must not match a labeled packet")
	}
	withLabel := Match{InPort: PortAny, HasLabel: true, Label: 42, QoS: -1}
	if !withLabel.Matches(1, p) {
		t.Fatal("label match failed")
	}
	p.SwapLabel(43)
	if withLabel.Matches(1, p) {
		t.Fatal("stale label matched")
	}
}

func TestMatchTopOfStackOnly(t *testing.T) {
	p := &Packet{}
	p.PushLabel(1)
	p.PushLabel(2)
	m := Match{InPort: PortAny, HasLabel: true, Label: 1, QoS: -1}
	if m.Matches(1, p) {
		t.Fatal("label match must consider top of stack only")
	}
}

func TestFlowTablePriorityAndTies(t *testing.T) {
	ft := NewFlowTable()
	ft.Add(Rule{Priority: 1, Match: AnyMatch(), Actions: []Action{Drop()}, Owner: "low"})
	ft.Add(Rule{Priority: 10, Match: AnyMatch(), Actions: []Action{Output(1)}, Owner: "hiA"})
	ft.Add(Rule{Priority: 10, Match: AnyMatch(), Actions: []Action{Output(2)}, Owner: "hiB"})
	r := ft.Lookup(1, &Packet{})
	if r == nil || r.Owner != "hiA" {
		t.Fatalf("expected first-inserted high-priority rule, got %v", r)
	}
}

func TestFlowTableMiss(t *testing.T) {
	ft := NewFlowTable()
	ft.Add(Rule{Priority: 5, Match: Match{InPort: 3, QoS: -1}, Actions: []Action{Output(1)}})
	if r := ft.Lookup(9, &Packet{}); r != nil {
		t.Fatalf("expected miss, got %v", r)
	}
	hits, misses := ft.Stats()
	if hits != 0 || misses != 1 {
		t.Fatalf("stats = %d/%d", hits, misses)
	}
}

func TestFlowTableRemove(t *testing.T) {
	ft := NewFlowTable()
	ft.Add(Rule{Priority: 1, Match: AnyMatch(), Owner: "a", Version: 1})
	ft.Add(Rule{Priority: 1, Match: AnyMatch(), Owner: "b", Version: 1})
	ft.Add(Rule{Priority: 1, Match: AnyMatch(), Owner: "a", Version: 2})
	if n := ft.RemoveByOwner("a"); n != 2 {
		t.Fatalf("removed %d", n)
	}
	if ft.Len() != 1 {
		t.Fatalf("len = %d", ft.Len())
	}
	if n := ft.RemoveVersion(1); n != 1 {
		t.Fatalf("removed version: %d", n)
	}
	ft.Add(Rule{Priority: 1, Match: AnyMatch()})
	ft.Clear()
	if ft.Len() != 0 {
		t.Fatal("clear failed")
	}
}

func TestFlowTableAddCopiesRule(t *testing.T) {
	ft := NewFlowTable()
	r := Rule{Priority: 1, Match: AnyMatch(), Owner: "x"}
	ft.Add(r)
	r.Owner = "mutated"
	if got := ft.Rules()[0].Owner; got != "x" {
		t.Fatalf("table rule aliases caller's value: %s", got)
	}
}

// Property: for any rule set, Lookup returns a rule whose priority is >= all
// other matching rules' priorities.
func TestLookupMaxPriorityQuick(t *testing.T) {
	type ruleSpec struct {
		Priority uint8
		InPort   uint8
	}
	f := func(specs []ruleSpec, probe uint8) bool {
		ft := NewFlowTable()
		for _, s := range specs {
			ft.Add(Rule{
				Priority: int(s.Priority),
				Match:    Match{InPort: PortID(s.InPort % 4), QoS: -1},
				Actions:  []Action{Drop()},
			})
		}
		p := &Packet{}
		in := PortID(probe % 4)
		got := ft.Lookup(in, p)
		best := -1
		for _, r := range ft.Rules() {
			if r.Match.Matches(in, p) && r.Priority > best {
				best = r.Priority
			}
		}
		if best == -1 {
			return got == nil
		}
		return got != nil && got.Priority == best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestActionStrings(t *testing.T) {
	cases := map[string]Action{
		"output:3": Output(3),
		"push:9":   Push(9),
		"pop":      Pop(),
		"swap:4":   Swap(4),
		"drop":     Drop(),
	}
	for want, a := range cases {
		if a.String() != want {
			t.Errorf("%v.String() = %q, want %q", a.Op, a.String(), want)
		}
	}
	if ToController().String() != "to-controller" {
		t.Error("to-controller string")
	}
}

func TestMatchString(t *testing.T) {
	if AnyMatch().String() != "any" {
		t.Fatalf("AnyMatch string = %q", AnyMatch().String())
	}
	m := Match{InPort: 2, HasLabel: true, Label: 7, UE: "u", QoS: 1}
	s := m.String()
	for _, want := range []string{"in=2", "label=7", "ue=u", "qos=1"} {
		if !contains(s, want) {
			t.Errorf("match string %q missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
