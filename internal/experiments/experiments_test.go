package experiments

import (
	"strings"
	"testing"

	"repro/internal/pathimpl"
)

func smallEval(t *testing.T) *Eval {
	t.Helper()
	ev, err := BuildEval(Small())
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

func TestBuildEvalComposition(t *testing.T) {
	ev := smallEval(t)
	if len(ev.H.Leaves) != 4 {
		t.Fatalf("leaves = %d", len(ev.H.Leaves))
	}
	if ev.H.Root.NIB.NumLinks() == 0 {
		t.Fatal("root discovered no cross-region links")
	}
	for _, leaf := range ev.H.Leaves {
		if leaf.NIB.NumLinks() == 0 {
			t.Fatalf("leaf %s discovered no links", leaf.ID)
		}
		ab := leaf.Abstraction()
		if ab == nil || ab.GSwitch.Fabric.Len() == 0 {
			t.Fatalf("leaf %s has no abstraction", leaf.ID)
		}
	}
	// each group assigned, attached, and in exactly one region
	for _, g := range ev.Model.Groups {
		if _, ok := ev.GroupRegion[g.ID]; !ok {
			t.Fatalf("group %s unassigned", g.ID)
		}
		if _, ok := ev.GroupAttach[g.ID]; !ok {
			t.Fatalf("group %s unattached", g.ID)
		}
	}
	if len(ev.BorderGroups) == 0 {
		t.Fatal("no border groups detected")
	}
	// interdomain routes propagated to the root
	if len(ev.H.Root.RouteOptions(ev.Table.Prefixes()[0])) == 0 {
		t.Fatal("root has no interdomain routes")
	}
}

func TestRunRoutingShape(t *testing.T) {
	p := Small()
	p.Prefixes = 80
	out, err := RunRouting(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 4 {
		t.Fatalf("results = %d", len(out.Results))
	}
	byName := map[string]RoutingResult{}
	for _, r := range out.Results {
		byName[r.Config.Name] = r
		if r.Samples == 0 {
			t.Fatalf("%s has no samples", r.Config.Name)
		}
		if r.Hops.Mean <= 0 || r.RTT.Mean <= 0 {
			t.Fatalf("%s has non-positive means", r.Config.Name)
		}
	}
	// The headline shape: more egress diversity → fewer hops; LTE worst.
	lte := byName["LTE"].Hops.Mean
	e2 := byName["2-egrs"].Hops.Mean
	e8 := byName["8-egrs"].Hops.Mean
	if e8 >= lte {
		t.Fatalf("8-egress (%v) must beat LTE (%v)", e8, lte)
	}
	if e8 > e2 {
		t.Fatalf("8-egress (%v) must not be worse than 2-egress (%v)", e8, e2)
	}
	if out.HopReductionPct <= 0 {
		t.Fatalf("hop reduction = %v", out.HopReductionPct)
	}
	if out.RTT85ReductionPct <= 0 {
		t.Fatalf("RTT85 reduction = %v", out.RTT85ReductionPct)
	}
	// CDF curves exist and are monotone
	for _, r := range out.Results {
		if len(r.RTTCDF) == 0 {
			t.Fatalf("%s has no CDF", r.Config.Name)
		}
		for i := 1; i < len(r.RTTCDF); i++ {
			if r.RTTCDF[i].X < r.RTTCDF[i-1].X {
				t.Fatal("CDF not monotone")
			}
		}
	}
	if !strings.Contains(RenderRouting(out), "Figure 8") {
		t.Fatal("render")
	}
}

func TestRunDiscoveryConvergenceShape(t *testing.T) {
	ev := smallEval(t)
	out := RunDiscoveryConvergence(ev)
	if len(out.PerController) != 5 { // 4 leaves + root
		t.Fatalf("controllers = %d", len(out.PerController))
	}
	for _, c := range out.PerController {
		if c.SoftMoW <= 0 {
			t.Fatalf("%s convergence = %v", c.Controller, c.SoftMoW)
		}
		// The paper's claim: every controller beats the flat baseline.
		if c.SoftMoW >= out.FlatTotal {
			t.Fatalf("%s (%v) should beat flat (%v)", c.Controller, c.SoftMoW, out.FlatTotal)
		}
		if c.SpeedupPct <= 0 {
			t.Fatalf("%s speedup = %v", c.Controller, c.SpeedupPct)
		}
	}
	if !strings.Contains(RenderDiscovery(out), "Figure 10") {
		t.Fatal("render")
	}
}

func TestRunAbstractionStatsShape(t *testing.T) {
	ev := smallEval(t)
	out := RunAbstractionStats(ev)
	if len(out.Rows) != 5 {
		t.Fatalf("rows = %d", len(out.Rows))
	}
	for _, r := range out.Rows[:4] {
		if r.ExposedPct <= 0 || r.ExposedPct >= 100 {
			t.Fatalf("%s exposed pct = %v", r.Controller, r.ExposedPct)
		}
		if r.Ports <= r.ExposedPorts {
			t.Fatalf("%s: exposed (%d) must be a strict subset of ports (%d)",
				r.Controller, r.ExposedPorts, r.Ports)
		}
	}
	if out.AvgLeafExposedPct <= 0 || out.AvgLeafExposedPct >= 100 {
		t.Fatalf("avg exposed = %v", out.AvgLeafExposedPct)
	}
	// the paper's 73%-hidden claim: most links invisible at the root
	if out.RootHiddenLinkPct < 50 {
		t.Fatalf("root hidden links = %v%%, want a large majority", out.RootHiddenLinkPct)
	}
	if !strings.Contains(RenderAbstraction(out), "Table 1") {
		t.Fatal("render")
	}
}

func TestRunLoadsShape(t *testing.T) {
	ev := smallEval(t)
	out := RunLoads(ev)
	if len(out.Series) != 3*4 {
		t.Fatalf("series = %d", len(out.Series))
	}
	var bearerMean, ueMean float64
	for _, s := range out.Series {
		if s.Summary.Min < 0 || s.Summary.Max <= 0 {
			t.Fatalf("%s/%s: degenerate series %+v", s.Region, s.Kind, s.Summary)
		}
		// diurnal variation: max must clearly exceed min
		if s.Summary.Max < 1.5*s.Summary.Min {
			t.Fatalf("%s/%s: no diurnal variation (min=%v max=%v)",
				s.Region, s.Kind, s.Summary.Min, s.Summary.Max)
		}
		switch s.Kind {
		case LoadBearer:
			bearerMean += s.Summary.Mean
		case LoadUEArrival:
			ueMean += s.Summary.Mean
		}
	}
	// Fig. 11 shape: bearer arrivals dominate UE arrivals by orders of
	// magnitude.
	if bearerMean < 10*ueMean {
		t.Fatalf("bearer (%v) should dwarf UE arrivals (%v)", bearerMean, ueMean)
	}
	if !strings.Contains(RenderLoads(out), "Figure 11a") {
		t.Fatal("render")
	}
}

func TestRunRegionOptShape(t *testing.T) {
	p := Small()
	out, err := RunRegionOpt(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Windows) != Fig12Hours*60/Fig12WindowMinutes {
		t.Fatalf("windows = %d", len(out.Windows))
	}
	for _, w := range out.Windows {
		if w.Opt > w.NoOpt {
			t.Fatalf("window %d: optimization increased handovers (%d > %d)",
				w.StartMinute, w.Opt, w.NoOpt)
		}
	}
	if out.ReductionPct <= 0 {
		t.Fatalf("reduction = %v", out.ReductionPct)
	}
	if out.TotalMoves == 0 {
		t.Fatal("optimizer made no moves")
	}
	if !strings.Contains(RenderRegionOpt([]*RegionOptOutcome{out}), "Figure 12") {
		t.Fatal("render")
	}
}

func TestRunLabelAblationShape(t *testing.T) {
	out, err := RunLabelAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Runs) != 4 {
		t.Fatalf("runs = %d", len(out.Runs))
	}
	for _, r := range out.Runs {
		if !r.Delivered {
			t.Fatalf("levels=%d mode=%s: packet not delivered", r.Levels, r.Mode)
		}
		switch r.Mode {
		case pathimpl.ModeSwap:
			if r.MaxLabelDepth != 1 {
				t.Fatalf("swap levels=%d depth=%d, want 1", r.Levels, r.MaxLabelDepth)
			}
		case pathimpl.ModeStack:
			if r.MaxLabelDepth != r.Levels {
				t.Fatalf("stack levels=%d depth=%d, want %d", r.Levels, r.MaxLabelDepth, r.Levels)
			}
		}
		if r.OverheadBytesPerPacket != 4*r.MaxLabelDepth {
			t.Fatal("overhead accounting")
		}
	}
	if !strings.Contains(RenderLabels(out), "Ablation") {
		t.Fatal("render")
	}
}

func TestReplayTrace(t *testing.T) {
	ev := smallEval(t)
	stats, err := ReplayTrace(ev, 13*60, 13*60+2, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Events == 0 || stats.Bearers == 0 {
		t.Fatalf("empty replay: %+v", stats)
	}
	if stats.Delivered == 0 {
		t.Fatalf("no packets delivered: %+v", stats)
	}
	// the vast majority of admitted bearers must deliver
	if stats.Undelivered > stats.Delivered/4 {
		t.Fatalf("too many undelivered: %+v", stats)
	}
	if stats.MaxLabelDepth > 1 {
		t.Fatalf("label invariant broken during replay: %+v", stats)
	}
	if stats.IntraHandovers+stats.InterHandovers == 0 {
		t.Fatalf("no handovers executed: %+v", stats)
	}
	// replay cleans up after itself: no active paths or reservations left
	for _, c := range ev.H.All {
		if n := c.NumPaths(); n != 0 {
			t.Fatalf("%s leaked %d active paths", c.ID, n)
		}
	}
	for _, l := range ev.Topo.Net.Links() {
		if l.Available() != l.Bandwidth {
			t.Fatalf("leaked reservation on %v", l)
		}
	}
}

func TestReplayTraceDeterministic(t *testing.T) {
	a, err := ReplayTrace(smallEval(t), 13*60, 13*60+1, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReplayTrace(smallEval(t), 13*60, 13*60+1, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Fatalf("replay not deterministic:\n%+v\n%+v", a, b)
	}
}
