package experiments

import (
	"fmt"

	"repro/internal/apps/regionopt"
	"repro/internal/dataplane"
	"repro/internal/ltetrace"
	"repro/internal/metrics"
	"repro/internal/topo"
)

// Figure 12 (§7.4, "Optimization results"): inter-region handovers handled
// by the root over 48 hours, for 4-region and 8-region configurations,
// with and without the greedy region optimization. "The root runs the
// reconfiguration algorithm every 3 hours ... each GS should not handle
// more (less) than 30% of their maximum (minimum) initial cellular loads
// ... the root can reduce the load of inter region handovers by 38.08% to
// 44.61%."

// Fig12Window is one 3-hour sample of the Fig. 12 series.
type Fig12Window struct {
	StartMinute int
	NoOpt       int
	Opt         int
	Moves       int
}

// RegionOptOutcome is one curve pair (xGS and xGS,Opt) of Fig. 12.
type RegionOptOutcome struct {
	Regions      int
	Windows      []Fig12Window
	ReductionPct float64
	TotalMoves   int
}

// Fig12Hours is the evaluation horizon.
const Fig12Hours = 48

// Fig12WindowMinutes is the reconfiguration period (3 h).
const Fig12WindowMinutes = 3 * 60

// LoadBoundPct is the ±30% constraint of §7.4.
const LoadBoundPct = 0.30

// MinutesPerDayWindows is the number of reconfiguration windows in one
// diurnal day.
const MinutesPerDayWindows = 24 * 60 / Fig12WindowMinutes

// RunRegionOpt regenerates one Fig. 12 curve pair for the given region
// count.
func RunRegionOpt(p Params, numRegions int) (*RegionOptOutcome, error) {
	pc := p
	pc.Regions = numRegions
	ev, err := BuildEval(pc)
	if err != nil {
		return nil, err
	}
	return runRegionOptOn(ev), nil
}

func runRegionOptOn(ev *Eval) *RegionOptOutcome {
	model := ev.Model
	k := len(ev.Regions)

	regionName := func(i int) string { return ev.Regions[i].ID }
	initial := make(map[dataplane.DeviceID]string, len(ev.GroupRegion))
	for g, ri := range ev.GroupRegion {
		initial[g] = regionName(ri)
	}

	// Region adjacency: regions joined by a physical cross-region link
	// (the inter-G-switch links the initiator discovered, §5.3.1).
	adjacent := regionAdjacency(ev.Topo, ev.Regions)

	// Initial per-region control-plane load (UE arrivals per minute at a
	// busy reference window) sets the ±30% bounds.
	groupLoad := func(from, to int) map[dataplane.DeviceID]float64 {
		loads := make(map[dataplane.DeviceID]float64, len(model.Groups))
		for _, grp := range model.Groups {
			var sum float64
			for _, bs := range grp.Members() {
				if i, ok := model.Index(bs); ok {
					for m := from; m < to; m += 15 { // 15-min sampling
						sum += model.UEArrivalRate(i, m)
					}
				}
			}
			loads[grp.ID] = sum / float64((to-from)/15)
		}
		return loads
	}
	// §7.4: "each GS should not handle more (less) than 30% of their
	// maximum (minimum) initial cellular loads per minute" — the bounds
	// derive from each region's diurnal maximum and minimum under the
	// initial assignment.
	bounds := make(map[string]regionopt.Bounds, k)
	for w := 0; w < MinutesPerDayWindows; w++ {
		start := w * Fig12WindowMinutes
		loads := groupLoad(start, start+Fig12WindowMinutes)
		regionLoad := make(map[string]float64, k)
		for g, l := range loads {
			regionLoad[initial[g]] += l
		}
		for r, l := range regionLoad {
			b, ok := bounds[r]
			if !ok {
				b = regionopt.Bounds{Lower: l, Upper: l}
			}
			if l < b.Lower {
				b.Lower = l
			}
			if l > b.Upper {
				b.Upper = l
			}
			bounds[r] = b
		}
	}
	for r, b := range bounds {
		bounds[r] = regionopt.Bounds{Lower: b.Lower * (1 - LoadBoundPct), Upper: b.Upper * (1 + LoadBoundPct)}
	}

	out := &RegionOptOutcome{Regions: k}
	optAssign := cloneAssign(initial)
	var noOptTotal, optTotal int

	for start := 0; start < Fig12Hours*60; start += Fig12WindowMinutes {
		end := start + Fig12WindowMinutes
		gGraph := model.HandoverGraphGroups(start, end)
		loads := groupLoad(start, end)

		noOpt := crossUnder(gGraph, initial)

		// The root refines the abstract sub-regions using the current
		// window's handover graph (§5.3.1): nodes are border G-BSes
		// one-to-one plus one aggregated internal G-BS per region.
		labeled, assign, movable := labelForAssignment(gGraph, optAssign)
		load := make(map[dataplane.DeviceID]float64, len(assign))
		for node := range assign {
			if g, ok := nodeGroup(node); ok {
				load[node] = loads[g]
			}
		}
		res := regionopt.Optimize(regionopt.Problem{
			Graph:   labeled,
			Assign:  assign,
			Movable: movable,
			Load:    load,
			Bounds:  bounds,
			Adjacent: func(from, to string) bool {
				return adjacent[[2]string{from, to}]
			},
		})
		// Apply the moves back to the group-level assignment.
		for _, mv := range res.Moves {
			if g, ok := nodeGroup(mv.GBS); ok {
				optAssign[g] = mv.To
			}
		}
		out.Windows = append(out.Windows, Fig12Window{
			StartMinute: start,
			NoOpt:       noOpt,
			Opt:         crossUnder(gGraph, optAssign),
			Moves:       len(res.Moves),
		})
		out.TotalMoves += len(res.Moves)
		noOptTotal += noOpt
		optTotal = optTotal + out.Windows[len(out.Windows)-1].Opt
	}
	out.ReductionPct = metrics.ReductionPct(float64(noOptTotal), float64(optTotal))
	return out
}

// crossUnder counts inter-region handovers in a group-level graph under a
// group→region assignment.
func crossUnder(g *ltetrace.HandoverGraph, assign map[dataplane.DeviceID]string) int {
	total := 0
	for _, e := range g.Edges() {
		ra, oka := assign[e.Key.A]
		rb, okb := assign[e.Key.B]
		if oka && okb && ra != rb {
			total += e.Weight
		}
	}
	return total
}

// labelForAssignment builds the root's optimization view: border groups
// (cross-region edges under the current assignment) stay one-to-one;
// internal groups aggregate into one "I-<region>" node (§5.3.1 example).
func labelForAssignment(g *ltetrace.HandoverGraph, groupAssign map[dataplane.DeviceID]string) (*ltetrace.HandoverGraph, regionopt.Assignment, map[dataplane.DeviceID]bool) {
	border := make(map[dataplane.DeviceID]bool)
	for _, e := range g.Edges() {
		ra, oka := groupAssign[e.Key.A]
		rb, okb := groupAssign[e.Key.B]
		if oka && okb && ra != rb {
			border[e.Key.A] = true
			border[e.Key.B] = true
		}
	}
	label := func(n dataplane.DeviceID) dataplane.DeviceID {
		r, ok := groupAssign[n]
		if !ok {
			return n
		}
		if border[n] {
			return n
		}
		return dataplane.DeviceID("I-" + r)
	}
	labeled := g.Relabel(label)
	assign := regionopt.Assignment{}
	movable := map[dataplane.DeviceID]bool{}
	for n, r := range groupAssign {
		if border[n] {
			assign[n] = r
			movable[n] = true
		} else {
			assign[dataplane.DeviceID("I-"+r)] = r
		}
	}
	return labeled, assign, movable
}

// nodeGroup recovers the group ID from an optimization node (internal
// aggregates are not groups).
func nodeGroup(n dataplane.DeviceID) (dataplane.DeviceID, bool) {
	if len(n) > 2 && n[:2] == "I-" {
		return "", false
	}
	return n, true
}

// regionAdjacency derives which region pairs share a physical link.
func regionAdjacency(t *topo.Topology, regions []topo.Region) map[[2]string]bool {
	idx := topo.RegionOf(regions)
	adj := make(map[[2]string]bool)
	for _, l := range t.Net.Links() {
		ra, oka := idx[l.A.Dev]
		rb, okb := idx[l.B.Dev]
		if oka && okb && ra != rb {
			a, b := regions[ra].ID, regions[rb].ID
			adj[[2]string{a, b}] = true
			adj[[2]string{b, a}] = true
		}
	}
	return adj
}

func cloneAssign(a map[dataplane.DeviceID]string) map[dataplane.DeviceID]string {
	c := make(map[dataplane.DeviceID]string, len(a))
	for k, v := range a {
		c[k] = v
	}
	return c
}

// RenderRegionOpt formats one Fig. 12 curve pair.
func RenderRegionOpt(outcomes []*RegionOptOutcome) string {
	var s string
	for _, o := range outcomes {
		t := metrics.NewTable(
			fmt.Sprintf("Figure 12 — Inter-region handovers per 3h window (%dGS)", o.Regions),
			"Hour", "NoOpt", "Opt", "Moves")
		for _, w := range o.Windows {
			t.AddRow(w.StartMinute/60, w.NoOpt, w.Opt, w.Moves)
		}
		s += t.String() + fmt.Sprintf("Reduction: %.2f%% (paper: 38.08%%-44.61%%), total moves: %d\n\n",
			o.ReductionPct, o.TotalMoves)
	}
	return s
}
