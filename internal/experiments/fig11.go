package experiments

import (
	"fmt"

	"repro/internal/ltetrace"
	"repro/internal/metrics"
)

// Figure 11 (§7.4, "Cellular loads"): per-minute CDFs of bearer arrivals
// (11a, up to 1e5/min per leaf), UE arrivals (11b, 1000–3000/min), and
// handover requests (11c, 1000–4000/min) handled by each leaf controller
// over balanced regions.

// LoadKind selects the Fig. 11 panel.
type LoadKind int

const (
	// LoadBearer is Fig. 11a.
	LoadBearer LoadKind = iota
	// LoadUEArrival is Fig. 11b.
	LoadUEArrival
	// LoadHandover is Fig. 11c.
	LoadHandover
)

// String implements fmt.Stringer.
func (k LoadKind) String() string {
	switch k {
	case LoadBearer:
		return "bearer-arrivals"
	case LoadUEArrival:
		return "ue-arrivals"
	case LoadHandover:
		return "handovers"
	default:
		return fmt.Sprintf("load(%d)", int(k))
	}
}

// RegionLoadSeries is one leaf's per-minute series and CDF for one panel.
type RegionLoadSeries struct {
	Region  string
	Kind    LoadKind
	Summary metrics.Summary
	CDF     []metrics.Point
}

// LoadsOutcome is the Fig. 11 dataset.
type LoadsOutcome struct {
	Minutes int
	Series  []RegionLoadSeries
}

// RunLoads regenerates Fig. 11 over one diurnal day.
func RunLoads(ev *Eval) *LoadsOutcome {
	const minutes = ltetrace.MinutesPerDay
	k := len(ev.Regions)
	assign := ev.BSRegion()

	bearer := make([][]float64, k)
	ue := make([][]float64, k)
	ho := make([][]float64, k)
	for m := 0; m < minutes; m++ {
		b, u, h := ev.Model.RegionLoads(assign, k, m)
		for r := 0; r < k; r++ {
			bearer[r] = append(bearer[r], b[r])
			ue[r] = append(ue[r], u[r])
			ho[r] = append(ho[r], h[r])
		}
	}
	out := &LoadsOutcome{Minutes: minutes}
	add := func(kind LoadKind, data [][]float64) {
		for r := 0; r < k; r++ {
			out.Series = append(out.Series, RegionLoadSeries{
				Region:  ev.RegionName(r),
				Kind:    kind,
				Summary: metrics.Summarize(data[r]),
				CDF:     metrics.NewCDF(data[r]).Points(20),
			})
		}
	}
	add(LoadBearer, bearer)
	add(LoadUEArrival, ue)
	add(LoadHandover, ho)
	return out
}

// RenderLoads formats Fig. 11 as three tables of per-region distribution
// statistics.
func RenderLoads(o *LoadsOutcome) string {
	var s string
	panel := map[LoadKind]string{
		LoadBearer:    "Figure 11a — Bearer arrivals per minute per leaf",
		LoadUEArrival: "Figure 11b — UE arrivals per minute per leaf",
		LoadHandover:  "Figure 11c — Handover requests per minute per leaf",
	}
	for _, kind := range []LoadKind{LoadBearer, LoadUEArrival, LoadHandover} {
		t := metrics.NewTable(panel[kind], "Leaf", "Min", "P25", "Median", "P75", "Max")
		for _, rs := range o.Series {
			if rs.Kind != kind {
				continue
			}
			t.AddRow(rs.Region, rs.Summary.Min, rs.Summary.P25, rs.Summary.Median,
				rs.Summary.P75, rs.Summary.Max)
		}
		s += t.String() + "\n"
	}
	return s
}
