// Package experiments contains one driver per table and figure of the
// SoftMoW evaluation (§7), plus the ablation for the §4.3 label-swapping
// design choice. Each driver is pure Go (no I/O) and returns a typed result
// that cmd/experiments renders and the repository benchmarks regenerate.
//
// Scale is parameterized: Full() reproduces the paper's setup (321
// switches, 1000+ base stations, 11590 prefixes, 1M subscribers); Small()
// keeps unit tests and benchmarks fast while preserving every structural
// property.
package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataplane"
	"repro/internal/interdomain"
	"repro/internal/ltetrace"
	"repro/internal/reca"
	"repro/internal/topo"
)

// Params scales one evaluation composition.
type Params struct {
	Seed     int64
	Switches int
	Regions  int
	BS       int
	Prefixes int
	Egress   int
	// UEs is the modeled subscriber count.
	UEs int
}

// Full returns the paper-scale parameters (§7.1–7.2).
func Full() Params {
	return Params{Seed: 42, Switches: 321, Regions: 4, BS: 1000, Prefixes: 11590, Egress: 8, UEs: 1_000_000}
}

// Small returns test/benchmark-scale parameters.
func Small() Params {
	return Params{Seed: 42, Switches: 64, Regions: 4, BS: 60, Prefixes: 150, Egress: 4, UEs: 10_000}
}

func (p *Params) defaults() {
	if p.Switches == 0 {
		p.Switches = 321
	}
	if p.Regions == 0 {
		p.Regions = 4
	}
	if p.BS == 0 {
		p.BS = 1000
	}
	if p.Prefixes == 0 {
		p.Prefixes = 11590
	}
	if p.Egress == 0 {
		p.Egress = 4
	}
	if p.UEs == 0 {
		p.UEs = 1_000_000
	}
}

// Eval is one fully composed evaluation scenario: topology, regions, radio
// workload, interdomain table, and a bootstrapped 2-level hierarchy.
type Eval struct {
	Params  Params
	Topo    *topo.Topology
	Regions []topo.Region
	Model   *ltetrace.Model
	Table   *interdomain.Table
	H       *core.Hierarchy
	// GroupRegion maps each BS group to its region index.
	GroupRegion map[dataplane.DeviceID]int
	// GroupAttach maps each BS group to its radio port.
	GroupAttach map[dataplane.DeviceID]dataplane.PortRef
	// BorderGroups marks groups with handovers into another region.
	BorderGroups map[dataplane.DeviceID]bool
}

// BuildEval composes the full scenario and bootstraps the hierarchy.
func BuildEval(p Params) (*Eval, error) {
	p.defaults()
	t := topo.Generate(topo.Params{Seed: p.Seed, NumSwitches: p.Switches})
	regions := topo.Partition(t, p.Regions)
	eps := t.PlaceEgressPoints(p.Egress)

	model := ltetrace.New(ltetrace.Params{
		Seed: p.Seed, NumBS: p.BS, NumUEs: p.UEs, PlaneSize: t.Params.PlaneSize,
	})

	ev := &Eval{
		Params: p, Topo: t, Regions: regions, Model: model,
		GroupRegion:  make(map[dataplane.DeviceID]int),
		GroupAttach:  make(map[dataplane.DeviceID]dataplane.PortRef),
		BorderGroups: make(map[dataplane.DeviceID]bool),
	}

	// Partition BS groups into approximately equal-load regions that
	// preserve geographic neighborhoods (§7.1: "inferred BS groups are
	// partitioned to form approximately equal-sized logical regions with
	// similar cellular loads"), then attach each group's access side to
	// the nearest core switch of its region.
	regionOf := topo.RegionOf(regions)
	groupRegion := assignGroupsBalanced(t, regions, model)
	for _, g := range model.Groups {
		ri := groupRegion[g.ID]
		access := nearestSwitchIn(t, regions[ri], g.Centroid(model.Locs))
		port, err := t.Net.AddRadioPort(access, g.ID)
		if err != nil {
			return nil, err
		}
		g.AccessSwitch = access
		t.Net.AddGroup(g)
		ev.GroupRegion[g.ID] = ri
		ev.GroupAttach[g.ID] = dataplane.PortRef{Dev: access, Port: port.ID}
	}
	for _, id := range model.BSIDs {
		t.Net.AddBaseStation(&dataplane.BaseStation{
			ID: id, Loc: model.Locs[id], GroupID: model.GroupOf[id],
		})
	}

	// Border groups: handovers to a group in another region (a busy-window
	// group-level graph stands in for the §5.2 adjacency knowledge).
	gg := model.HandoverGraphGroups(12*60, 15*60)
	for _, e := range gg.Edges() {
		ra, oka := ev.GroupRegion[e.Key.A]
		rb, okb := ev.GroupRegion[e.Key.B]
		if oka && okb && ra != rb {
			ev.BorderGroups[e.Key.A] = true
			ev.BorderGroups[e.Key.B] = true
		}
	}

	// Middleboxes: a firewall and a rate limiter per region at the region
	// seed switch, exercising G-middlebox aggregation.
	for i, r := range regions {
		if len(r.Switches) == 0 {
			continue
		}
		sw := r.Switches[0]
		for j, mt := range []dataplane.MiddleboxType{dataplane.MBFirewall, dataplane.MBRateLimiter} {
			mb := &dataplane.Middlebox{
				ID:       dataplane.DeviceID(fmt.Sprintf("MB-%d-%d", i, j)),
				Type:     mt,
				Attach:   dataplane.PortRef{Dev: sw},
				Capacity: 1000, Load: 100,
			}
			if err := t.Net.AttachMiddlebox(mb); err != nil {
				return nil, err
			}
		}
	}

	// Leaf specs per region.
	specs := make([]core.LeafSpec, len(regions))
	for i, r := range regions {
		specs[i] = core.LeafSpec{
			ID:       "L" + r.ID,
			Switches: r.Switches,
			BSGroup:  make(map[dataplane.DeviceID]dataplane.DeviceID),
		}
	}
	for _, g := range model.Groups {
		ri := ev.GroupRegion[g.ID]
		specs[ri].Radios = append(specs[ri].Radios, reca.RadioAttachment{
			ID:           g.ID,
			Attach:       ev.GroupAttach[g.ID],
			Border:       ev.BorderGroups[g.ID],
			Centroid:     g.Centroid(model.Locs),
			Constituents: []dataplane.DeviceID{g.ID},
		})
		for _, bs := range g.Members() {
			specs[ri].BSGroup[bs] = g.ID
		}
	}
	for _, mb := range t.Net.Middleboxes() {
		ri := regionOf[mb.Attach.Dev]
		specs[ri].Middleboxes = append(specs[ri].Middleboxes, reca.MiddleboxAttachment{
			ID: mb.ID, Type: mb.Type, Attach: mb.Attach,
			Capacity: mb.Capacity, Load: mb.Load,
		})
	}

	h, err := core.NewTwoLevel(t.Net, "root", specs)
	if err != nil {
		return nil, err
	}
	ev.H = h

	sites := make([]interdomain.EgressSite, 0, len(eps))
	for _, ep := range eps {
		sites = append(sites, interdomain.EgressSite{ID: ep.ID, Loc: t.Locations[ep.Switch]})
	}
	ev.Table = interdomain.Generate(interdomain.GenParams{
		Seed: p.Seed, NumPrefixes: p.Prefixes, Egresses: sites,
		Snapshots: 3, PlaneSize: t.Params.PlaneSize,
	})
	h.DistributeInterdomain(ev.Table, 0)
	return ev, nil
}

// assignGroupsBalanced distributes BS groups over regions: geographically
// (nearest region by its closest switch) subject to a tight equal-load
// cap, matching the paper's balanced-region setup ("approximately
// equal-sized logical regions with similar cellular loads", §7.1). The
// binding cap pushes boundary groups off their geographic home — the
// inefficiency the §5.3 region optimization later removes.
func assignGroupsBalanced(t *topo.Topology, regions []topo.Region, model *ltetrace.Model) map[dataplane.DeviceID]int {
	k := len(regions)
	regionDist := func(centroid dataplane.GeoPoint, r topo.Region) float64 {
		best := t.Locations[r.Switches[0]].Dist(centroid)
		for _, sw := range r.Switches[1:] {
			if d := t.Locations[sw].Dist(centroid); d < best {
				best = d
			}
		}
		return best
	}
	total := 0
	for _, g := range model.Groups {
		total += g.Size()
	}
	cap := float64(total)/float64(k)*1.45 + float64(dataplane.MaxGroupSize)
	load := make([]float64, k)
	out := make(map[dataplane.DeviceID]int, len(model.Groups))
	for _, g := range model.Groups {
		centroid := g.Centroid(model.Locs)
		best, bestD := -1, 0.0
		for i := range regions {
			if load[i]+float64(g.Size()) > cap || len(regions[i].Switches) == 0 {
				continue
			}
			d := regionDist(centroid, regions[i])
			if best == -1 || d < bestD {
				best, bestD = i, d
			}
		}
		if best == -1 { // every region at cap: least loaded
			best = 0
			for i := 1; i < k; i++ {
				if load[i] < load[best] {
					best = i
				}
			}
		}
		out[g.ID] = best
		load[best] += float64(g.Size())
	}
	return out
}

// nearestSwitchIn returns the region switch closest to loc.
func nearestSwitchIn(t *topo.Topology, r topo.Region, loc dataplane.GeoPoint) dataplane.DeviceID {
	best := r.Switches[0]
	bestD := t.Locations[best].Dist(loc)
	for _, sw := range r.Switches[1:] {
		if d := t.Locations[sw].Dist(loc); d < bestD {
			best, bestD = sw, d
		}
	}
	return best
}

// RegionName returns the leaf controller ID for a region index.
func (ev *Eval) RegionName(i int) string {
	return "L" + ev.Regions[i].ID
}

// BSRegion builds the BS → region-index assignment used by the load
// drivers.
func (ev *Eval) BSRegion() map[dataplane.DeviceID]int {
	out := make(map[dataplane.DeviceID]int, len(ev.Model.BSIDs))
	for _, bs := range ev.Model.BSIDs {
		if g, ok := ev.Model.GroupOf[bs]; ok {
			if r, ok := ev.GroupRegion[g]; ok {
				out[bs] = r
			}
		}
	}
	return out
}
