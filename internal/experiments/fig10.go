package experiments

import (
	"fmt"
	"time"

	"repro/internal/dataplane"
	"repro/internal/discovery"
	"repro/internal/metrics"
	"repro/internal/nib"
)

// Figure 10 (§7.3): per-controller discovery convergence time, SoftMoW vs
// a flat single controller running standard LLDP discovery. "SoftMoW's
// controllers detect their topology between 44% and 58% faster compared to
// the flat discovery by the single controller."
//
// Table 1 (§7.3): what each controller discovered vs exposed; "the leaf
// controllers on average have exposed 20.75% of total ports ... 73% of
// total links are hidden at the root level."

// ControllerConvergence is one bar pair of Fig. 10.
type ControllerConvergence struct {
	Controller string
	SoftMoW    time.Duration
	Flat       time.Duration
	SpeedupPct float64
}

// DiscoveryOutcome is the Fig. 10 dataset.
type DiscoveryOutcome struct {
	PerController []ControllerConvergence
	FlatTotal     time.Duration
}

// AbstractionRow is one Table 1 row.
type AbstractionRow struct {
	Controller   string
	Switches     int
	Ports        int
	Links        int
	ExposedPorts int
	ExposedPct   float64
}

// AbstractionOutcome is the Table 1 dataset.
type AbstractionOutcome struct {
	Rows []AbstractionRow
	// AvgLeafExposedPct is the paper's 20.75% aggregate.
	AvgLeafExposedPct float64
	// RootHiddenLinkPct is the paper's 73% claim.
	RootHiddenLinkPct float64
}

// RunDiscoveryConvergence regenerates Fig. 10 from a composed evaluation.
func RunDiscoveryConvergence(ev *Eval) *DiscoveryOutcome {
	tp := discovery.DefaultTiming()

	// Leaf probes: one per physical switch port; a response returns when
	// the port has an intra-region link.
	var leafProbes []discovery.Probe
	totalPorts, totalLinkedPorts := 0, 0
	for _, leaf := range ev.H.Leaves {
		linked := linkedPorts(leaf.NIB)
		for _, d := range leaf.NIB.Devices(dataplane.KindSwitch) {
			for _, p := range d.Ports {
				if !p.Up || p.Radio != "" {
					continue
				}
				totalPorts++
				ref := dataplane.PortRef{Dev: d.ID, Port: p.ID}
				has := linked[ref]
				if has {
					totalLinkedPorts++
				}
				leafProbes = append(leafProbes, discovery.Probe{Owner: leaf.ID, HasLink: has})
			}
		}
	}
	leafFin := discovery.Convergence(leafProbes, tp, nil)

	// Root probes start after the slowest leaf (sequential bootstrap) and
	// relay through the child that exposes each border port.
	maxLeaf := time.Duration(0)
	for _, v := range leafFin {
		if v > maxLeaf {
			maxLeaf = v
		}
	}
	rootLinked := linkedPorts(ev.H.Root.NIB)
	var rootProbes []discovery.Probe
	for _, child := range ev.H.Root.Children() {
		gsw := child.GSwitchID()
		d, ok := ev.H.Root.NIB.Device(gsw)
		if !ok {
			continue
		}
		for _, p := range d.Ports {
			if p.Radio != "" || p.External {
				// The root still probes external ports (they produce no
				// response), matching LLDP behaviour.
				if p.Radio != "" {
					continue
				}
			}
			ref := dataplane.PortRef{Dev: gsw, Port: p.ID}
			rootProbes = append(rootProbes, discovery.Probe{
				Owner:   ev.H.Root.ID,
				Relays:  []string{child.ID},
				HasLink: rootLinked[ref],
			})
		}
	}
	rootFin := discovery.Convergence(rootProbes, tp, map[string]time.Duration{ev.H.Root.ID: maxLeaf})

	// Flat baseline: one controller probes every physical port; cross-
	// region link endpoints respond too.
	crossEndpoints := ev.H.Root.NIB.NumLinks() * 2
	flatFin := discovery.Convergence(
		discovery.FlatBaseline("flat", totalPorts, totalLinkedPorts+crossEndpoints), tp, nil)
	flat := flatFin["flat"]

	out := &DiscoveryOutcome{FlatTotal: flat}
	for _, leaf := range ev.H.Leaves {
		v := leafFin[leaf.ID]
		out.PerController = append(out.PerController, ControllerConvergence{
			Controller: leaf.ID, SoftMoW: v, Flat: flat,
			SpeedupPct: metrics.ReductionPct(float64(flat), float64(v)),
		})
	}
	rv := rootFin[ev.H.Root.ID]
	out.PerController = append(out.PerController, ControllerConvergence{
		Controller: ev.H.Root.ID, SoftMoW: rv, Flat: flat,
		SpeedupPct: metrics.ReductionPct(float64(flat), float64(rv)),
	})
	return out
}

func linkedPorts(n *nib.NIB) map[dataplane.PortRef]bool {
	out := make(map[dataplane.PortRef]bool)
	for _, l := range n.Links() {
		out[l.A] = true
		out[l.B] = true
	}
	return out
}

// RunAbstractionStats regenerates Table 1.
func RunAbstractionStats(ev *Eval) *AbstractionOutcome {
	out := &AbstractionOutcome{}
	var pctSum float64
	for _, leaf := range ev.H.Leaves {
		ab := leaf.Abstraction()
		row := AbstractionRow{
			Controller:   leaf.ID,
			Switches:     ab.Stats.Devices,
			Ports:        ab.Stats.Ports,
			Links:        ab.Stats.Links,
			ExposedPorts: ab.Stats.ExposedPorts,
			ExposedPct:   ab.Stats.ExposedPct(),
		}
		pctSum += row.ExposedPct
		out.Rows = append(out.Rows, row)
	}
	if len(ev.H.Leaves) > 0 {
		out.AvgLeafExposedPct = pctSum / float64(len(ev.H.Leaves))
	}
	rootAb := ev.H.Root.Abstraction()
	out.Rows = append(out.Rows, AbstractionRow{
		Controller:   ev.H.Root.ID,
		Switches:     rootAb.Stats.Devices,
		Ports:        rootAb.Stats.Ports,
		Links:        rootAb.Stats.Links,
		ExposedPorts: rootAb.Stats.ExposedPorts,
		ExposedPct:   rootAb.Stats.ExposedPct(),
	})
	totalPhysicalLinks := len(ev.Topo.Net.Links())
	out.RootHiddenLinkPct = float64(totalPhysicalLinks-ev.H.Root.NIB.NumLinks()) /
		float64(totalPhysicalLinks) * 100
	return out
}

// RenderDiscovery formats Fig. 10.
func RenderDiscovery(o *DiscoveryOutcome) string {
	t := metrics.NewTable("Figure 10 — Discovery convergence time",
		"Controller", "SoftMoW", "Flat", "Faster by")
	for _, c := range o.PerController {
		t.AddRow(c.Controller, c.SoftMoW.String(), c.Flat.String(),
			fmt.Sprintf("%.1f%%", c.SpeedupPct))
	}
	return t.String() + "(paper: controllers detect topology 44-58% faster than flat)\n"
}

// RenderAbstraction formats Table 1.
func RenderAbstraction(o *AbstractionOutcome) string {
	t := metrics.NewTable("Table 1 — SoftMoW controller abstractions",
		"Controller", "SW", "Ports", "Links", "Exposed", "Exposed %")
	for _, r := range o.Rows {
		t.AddRow(r.Controller, r.Switches, r.Ports, r.Links, r.ExposedPorts,
			fmt.Sprintf("%.1f", r.ExposedPct))
	}
	return t.String() + fmt.Sprintf(
		"Avg leaf exposed ports: %.2f%% (paper: 20.75%%)\nLinks hidden at root: %.1f%% (paper: 73%%)\n",
		o.AvgLeafExposedPct, o.RootHiddenLinkPct)
}
