package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dataplane"
	"repro/internal/interdomain"
	"repro/internal/metrics"
	"repro/internal/pathimpl"
	"repro/internal/reca"
)

// Label ablation (§4.3): recursive label swapping vs the label-stacking
// baseline. Stacking encapsulates k labels for a level-k path ("It is easy
// to imagine an increase in the packet header space and network bandwidth
// consumption, as SoftMoW levels increases"); swapping keeps every packet
// at one label. This driver builds 2- and 3-level hierarchies over a line
// topology, implements a root path, drives a packet, and reports the
// observed maximum on-link label depth plus the bandwidth overhead.

// LabelRun is one (levels, mode) measurement.
type LabelRun struct {
	Levels        int
	Mode          pathimpl.Mode
	MaxLabelDepth int
	RulesTotal    int
	// OverheadBytesPerPacket assumes 4-byte MPLS-class labels.
	OverheadBytesPerPacket int
	Delivered              bool
}

// LabelOutcome is the ablation dataset.
type LabelOutcome struct {
	Runs []LabelRun
}

// labelChain builds a line of switches split into per-level regions and
// bootstraps a hierarchy of the requested depth (2 or 3), returning the
// injection point.
func labelChain(levels int, mode pathimpl.Mode) (*dataplane.Network, *core.Hierarchy, dataplane.PortRef, error) {
	net := dataplane.NewNetwork()
	ids := []dataplane.DeviceID{"S1", "S2", "S3", "S4", "S5"}
	for _, id := range ids {
		net.AddSwitch(id)
	}
	for i := 0; i < len(ids)-1; i++ {
		if _, err := net.Connect(ids[i], ids[i+1], 5*time.Millisecond, 1000); err != nil {
			return nil, nil, dataplane.PortRef{}, err
		}
	}
	rp, err := net.AddRadioPort("S1", "gA")
	if err != nil {
		return nil, nil, dataplane.PortRef{}, err
	}
	ep, err := net.AddEgress("E1", "S5", "isp")
	if err != nil {
		return nil, nil, dataplane.PortRef{}, err
	}
	radio := dataplane.PortRef{Dev: "S1", Port: rp.ID}

	// L1 spans two switches so its regional segment needs a local label,
	// making depth grow per level under stacking.
	gaSpec := core.LeafSpec{
		ID:       "L1",
		Switches: []dataplane.DeviceID{"S1", "S2"},
		Radios: []reca.RadioAttachment{{
			ID: "gA", Attach: radio, Border: true, Constituents: []dataplane.DeviceID{"gA"},
		}},
		BSGroup: map[dataplane.DeviceID]dataplane.DeviceID{"b1": "gA"},
	}

	var h *core.Hierarchy
	switch levels {
	case 2:
		h, err = core.NewTwoLevel(net, "root", []core.LeafSpec{
			gaSpec,
			{ID: "L2", Switches: []dataplane.DeviceID{"S3", "S4", "S5"}},
		})
	case 3:
		h, err = core.NewThreeLevel(net, "root", map[string][]core.LeafSpec{
			"P1": {
				gaSpec,
				{ID: "L2", Switches: []dataplane.DeviceID{"S3"}},
			},
			"P2": {
				{ID: "L3", Switches: []dataplane.DeviceID{"S4", "S5"}},
			},
		}, nil)
	default:
		return nil, nil, dataplane.PortRef{}, fmt.Errorf("experiments: unsupported level count %d", levels)
	}
	if err != nil {
		return nil, nil, dataplane.PortRef{}, err
	}
	for _, c := range h.All {
		c.Mode = mode
	}
	// The prefix exits at the far end, forcing a root-implemented path.
	last := h.Leaves[len(h.Leaves)-1]
	last.AddInterdomainRoutes([]interdomain.Route{
		{Prefix: "pfx", Egress: "E1", EgressSwitch: "S5",
			Metrics: interdomain.Metrics{Hops: 5, RTT: 10 * time.Millisecond}},
	}, dataplane.PortRef{Dev: "S5", Port: ep.Port})
	last.PropagateInterdomain()
	return net, h, radio, nil
}

// RunLabelAblation measures both modes at 2 and 3 hierarchy levels.
func RunLabelAblation() (*LabelOutcome, error) {
	out := &LabelOutcome{}
	for _, levels := range []int{2, 3} {
		for _, mode := range []pathimpl.Mode{pathimpl.ModeSwap, pathimpl.ModeStack} {
			net, h, radio, err := labelChain(levels, mode)
			if err != nil {
				return nil, err
			}
			l1 := h.Controller("L1")
			if _, err := l1.HandleBearerRequest(core.BearerRequest{
				UE: "u1", BS: "b1", Prefix: "pfx",
			}); err != nil {
				return nil, err
			}
			pkt := &dataplane.Packet{UE: "u1", DstPrefix: "pfx"}
			res, err := net.Inject(radio.Dev, radio.Port, pkt)
			if err != nil {
				return nil, err
			}
			rules := 0
			for _, sw := range net.Switches() {
				rules += sw.Table.Len()
			}
			out.Runs = append(out.Runs, LabelRun{
				Levels:                 levels,
				Mode:                   mode,
				MaxLabelDepth:          res.MaxLabelDepth,
				RulesTotal:             rules,
				OverheadBytesPerPacket: 4 * res.MaxLabelDepth,
				Delivered:              res.Disposition == dataplane.DispEgressed,
			})
		}
	}
	return out, nil
}

// RenderLabels formats the ablation table.
func RenderLabels(o *LabelOutcome) string {
	t := metrics.NewTable("Ablation §4.3 — Recursive label swapping vs stacking",
		"Levels", "Mode", "MaxDepth", "Bytes/pkt", "PhysRules", "Delivered")
	for _, r := range o.Runs {
		t.AddRow(r.Levels, r.Mode.String(), r.MaxLabelDepth, r.OverheadBytesPerPacket,
			r.RulesTotal, fmt.Sprintf("%v", r.Delivered))
	}
	return t.String() + "(swap keeps every packet at 1 label regardless of hierarchy depth)\n"
}
