package experiments

import (
	"fmt"
	"time"

	"repro/internal/dataplane"
	"repro/internal/interdomain"
	"repro/internal/metrics"
)

// Figures 8 and 9 (§7.2, "Routing Performance"): end-to-end hop count and
// RTT as a function of the number of Internet egress points, against the
// rigid-LTE baseline. "SoftMoW with 8 egress points can reduce the average
// end-to-end hop count by 36% compared to LTE network ... the 75th and
// 85th percentile RTT latencies reduce by 43% and 60%."

// RoutingConfig is one curve of Figs. 8/9.
type RoutingConfig struct {
	Name   string
	Egress int
	// LTE marks the rigid baseline: every region's traffic exits through
	// its single home PGW regardless of destination.
	LTE bool
}

// RoutingConfigs returns the paper's four configurations. The rigid LTE
// baseline has a single Internet edge (the region's PGW); SoftMoW's
// inter-connected core offers 2/4/8 egress points with globally optimal
// selection.
func RoutingConfigs() []RoutingConfig {
	return []RoutingConfig{
		{Name: "LTE", Egress: 1, LTE: true},
		{Name: "2-egrs", Egress: 2},
		{Name: "4-egrs", Egress: 4},
		{Name: "8-egrs", Egress: 8},
	}
}

// RoutingResult is one configuration's measured distributions.
type RoutingResult struct {
	Config  RoutingConfig
	Hops    metrics.Summary
	RTT     metrics.Summary
	RTTCDF  []metrics.Point
	Samples int
}

// RoutingOutcome is the full Figs. 8/9 dataset.
type RoutingOutcome struct {
	Results []RoutingResult
	// HopReductionPct is avg-hop reduction of the best SoftMoW config vs
	// LTE (paper: 36%).
	HopReductionPct float64
	// RTT75/RTT85 reductions vs LTE (paper: 43% / 60%).
	RTT75ReductionPct float64
	RTT85ReductionPct float64
}

// maxRoutingSources caps the sampled G-BS sources per configuration.
const maxRoutingSources = 24

// RunRouting regenerates Figs. 8 and 9.
func RunRouting(p Params) (*RoutingOutcome, error) {
	out := &RoutingOutcome{}
	var lte, best *RoutingResult
	for _, cfg := range RoutingConfigs() {
		pc := p
		pc.Egress = cfg.Egress
		ev, err := BuildEval(pc)
		if err != nil {
			return nil, err
		}
		res, err := measureRouting(ev, cfg)
		if err != nil {
			return nil, err
		}
		out.Results = append(out.Results, *res)
		if cfg.LTE {
			lte = res
		}
		if !cfg.LTE && (best == nil || res.Hops.Mean < best.Hops.Mean) {
			best = res
		}
	}
	if lte != nil && best != nil {
		out.HopReductionPct = metrics.ReductionPct(lte.Hops.Mean, best.Hops.Mean)
		out.RTT75ReductionPct = metrics.ReductionPct(lte.RTT.P75, best.RTT.P75)
		out.RTT85ReductionPct = metrics.ReductionPct(lte.RTT.P85, best.RTT.P85)
	}
	return out, nil
}

// measureRouting computes per-(source G-BS, prefix) end-to-end totals at
// the root, over all interdomain snapshots ("To consider routing changes,
// we replay the hop counts and latencies from multiple snapshots", §7.2).
func measureRouting(ev *Eval, cfg RoutingConfig) (*RoutingResult, error) {
	root := ev.H.Root
	g := root.Graph()

	// Source G-BS ports on the root's logical topology.
	var sources []dataplane.PortRef
	for _, d := range root.NIB.Devices(dataplane.KindGSwitch) {
		for _, p := range d.Ports {
			if p.Radio != "" {
				sources = append(sources, dataplane.PortRef{Dev: d.ID, Port: p.ID})
			}
		}
	}
	if len(sources) == 0 {
		return nil, fmt.Errorf("experiments: no G-BS sources exposed")
	}
	if len(sources) > maxRoutingSources {
		stride := len(sources) / maxRoutingSources
		var sampled []dataplane.PortRef
		for i := 0; i < len(sources) && len(sampled) < maxRoutingSources; i += stride {
			sampled = append(sampled, sources[i])
		}
		sources = sampled
	}

	// Egress ports at the root, with their home leaf (G-switch).
	type egressRef struct {
		id  string
		ref dataplane.PortRef
	}
	var egresses []egressRef
	seen := map[string]bool{}
	for _, opts := range rootOptionsByEgress(ev) {
		if seen[opts.id] {
			continue
		}
		seen[opts.id] = true
		egresses = append(egresses, egressRef{id: opts.id, ref: opts.ref})
	}
	if len(egresses) == 0 {
		return nil, fmt.Errorf("experiments: no egress options at root")
	}

	// One SSSP per source gives internal metrics to every egress.
	type internal struct {
		hops int
		lat  time.Duration
		ok   bool
	}
	internalTo := make([]map[string]internal, len(sources))
	for i, src := range sources {
		row := g.MetricsFrom(src)
		m := make(map[string]internal, len(egresses))
		for _, e := range egresses {
			if pm, ok := row[e.ref]; ok && pm.Reachable {
				m[e.id] = internal{hops: pm.Hops, lat: pm.Latency, ok: true}
			}
		}
		internalTo[i] = m
	}

	// LTE baseline: a source's region always exits via its home egress —
	// the egress whose switch shares the source's region (nearest by
	// internal hops stands in when a region hosts no egress).
	homeEgress := make([]string, len(sources))
	for i := range sources {
		bestID, bestHops := "", int(1)<<30
		for _, e := range egresses {
			if m, ok := internalTo[i][e.id]; ok && m.hops < bestHops {
				bestID, bestHops = e.id, m.hops
			}
		}
		homeEgress[i] = bestID
	}

	var hops, rtts []float64
	for snap := 0; snap < ev.Table.Snapshots(); snap++ {
		for _, pfx := range ev.Table.Prefixes() {
			for i := range sources {
				var totalHops int
				var totalRTT time.Duration
				found := false
				if cfg.LTE {
					id := homeEgress[i]
					m, ok := internalTo[i][id]
					if !ok {
						continue
					}
					ext, ok2 := ev.Table.Lookup(snap, id, pfx)
					if !ok2 {
						continue
					}
					totalHops = m.hops + ext.Hops
					totalRTT = 2*m.lat + ext.RTT
					found = true
				} else {
					for _, e := range egresses {
						m, ok := internalTo[i][e.id]
						if !ok {
							continue
						}
						ext, ok2 := ev.Table.Lookup(snap, e.id, pfx)
						if !ok2 {
							continue
						}
						th := m.hops + ext.Hops
						tr := 2*m.lat + ext.RTT
						if !found || th < totalHops || (th == totalHops && tr < totalRTT) {
							totalHops, totalRTT, found = th, tr, true
						}
					}
				}
				if found {
					hops = append(hops, float64(totalHops))
					rtts = append(rtts, float64(totalRTT)/float64(time.Millisecond))
				}
			}
		}
	}
	return &RoutingResult{
		Config:  cfg,
		Hops:    metrics.Summarize(hops),
		RTT:     metrics.Summarize(rtts),
		RTTCDF:  metrics.NewCDF(rtts).Points(40),
		Samples: len(hops),
	}, nil
}

type rootEgressOption struct {
	id  string
	ref dataplane.PortRef
}

// rootOptionsByEgress lists the root's egress ports by egress ID, derived
// from the propagated interdomain routes.
func rootOptionsByEgress(ev *Eval) []rootEgressOption {
	var out []rootEgressOption
	seen := map[string]bool{}
	for _, pfx := range ev.Table.Prefixes() {
		for _, opt := range ev.H.Root.RouteOptions(interdomain.PrefixID(pfx)) {
			if !seen[opt.Egress] {
				seen[opt.Egress] = true
				out = append(out, rootEgressOption{id: opt.Egress, ref: opt.Ref})
			}
		}
		if len(seen) > 0 {
			break // one prefix carries all egresses
		}
	}
	return out
}

// RenderRouting formats the Fig. 8 table and Fig. 9 percentiles.
func RenderRouting(o *RoutingOutcome) string {
	t := metrics.NewTable("Figure 8 — End-to-end hop counts (internal + external)",
		"Config", "Mean", "P25", "Median", "P75", "Max", "Samples")
	for _, r := range o.Results {
		t.AddRow(r.Config.Name, r.Hops.Mean, r.Hops.P25, r.Hops.Median, r.Hops.P75, r.Hops.Max, r.Samples)
	}
	t2 := metrics.NewTable("Figure 9 — End-to-end RTT (ms)",
		"Config", "Mean", "P50", "P75", "P85", "P95")
	for _, r := range o.Results {
		t2.AddRow(r.Config.Name, r.RTT.Mean, r.RTT.Median, r.RTT.P75, r.RTT.P85, r.RTT.P95)
	}
	return t.String() + "\n" + t2.String() + fmt.Sprintf(
		"\nHop reduction (best vs LTE): %.1f%% (paper: 36%%)\nRTT reductions P75/P85: %.1f%% / %.1f%% (paper: 43%% / 60%%)\n",
		o.HopReductionPct, o.RTT75ReductionPct, o.RTT85ReductionPct)
}
