package experiments

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/dataplane"
	"repro/internal/interdomain"
	"repro/internal/ltetrace"
	"repro/internal/reca"
)

// ReplayTrace feeds a sampled window of the synthetic LTE trace through
// the live control plane: UE attaches register UEs, bearer creations run
// the §5.1 admission procedure (with delegation), handover events run the
// §5.2 procedures (intra- or inter-region as the target dictates), and
// each admitted bearer is validated by driving a packet through the
// programmed data plane.
//
// This is the integration bridge between the §7.1 trace model and the
// controller: the paper replays its proprietary trace against the
// prototype the same way.

// ReplayStats summarizes one replay window.
type ReplayStats struct {
	Events          int
	Bearers         int
	BearerFailures  int
	IntraHandovers  int
	InterHandovers  int
	HandoverSkipped int
	Delivered       int
	Undelivered     int
	// MaxLabelDepth is the maximum on-link label depth observed across all
	// driven packets (must stay ≤ 1 in swap mode).
	MaxLabelDepth int
}

// ReplayTrace replays minutes [from, to) at the given thinning scale.
func ReplayTrace(ev *Eval, from, to int, scale float64) (*ReplayStats, error) {
	stats := &ReplayStats{}
	events := ev.Model.SampleEvents(from, to, scale)
	prefixes := ev.Table.Prefixes()
	if len(prefixes) == 0 {
		return nil, fmt.Errorf("experiments: no prefixes to route to")
	}

	leafOfBS := func(bs dataplane.DeviceID) (*core.Controller, dataplane.DeviceID, bool) {
		group, ok := ev.Model.GroupOf[bs]
		if !ok {
			return nil, "", false
		}
		ri, ok := ev.GroupRegion[group]
		if !ok {
			return nil, "", false
		}
		return ev.H.Leaves[ri], group, true
	}
	// exposedGBS names the G-BS a group is visible under at the root.
	exposedGBS := func(group dataplane.DeviceID, leaf *core.Controller) dataplane.DeviceID {
		if ev.BorderGroups[group] {
			return group
		}
		return reca.InternalGBSID(leaf.ID)
	}
	prefixFor := func(ue string) interdomain.PrefixID {
		h := 0
		for i := 0; i < len(ue); i++ {
			h = h*31 + int(ue[i])
		}
		if h < 0 {
			h = -h
		}
		return prefixes[h%len(prefixes)]
	}
	admitted := make(map[string]*core.Controller) // UE → owning leaf

	for _, e := range events {
		stats.Events++
		switch e.Kind {
		case ltetrace.EvBearerCreate:
			leaf, group, ok := leafOfBS(e.BS)
			if !ok {
				continue
			}
			if prev, dup := admitted[e.UE]; dup {
				// re-admission replaces the bearer
				_ = prev.DeactivateBearer(e.UE) //softmow:allow errdiscard the UE is being re-admitted, a failed release only leaves an idempotently-removable stale path
			}
			rec, err := leaf.HandleBearerRequest(core.BearerRequest{
				UE: e.UE, BS: e.BS, Prefix: prefixFor(e.UE), QoS: e.QoS,
			})
			if err != nil {
				stats.BearerFailures++
				continue
			}
			stats.Bearers++
			admitted[e.UE] = leaf

			// Validate with a real packet from the UE's radio port.
			attach := ev.GroupAttach[group]
			pkt := &dataplane.Packet{UE: e.UE, DstPrefix: string(rec.Prefix), QoS: e.QoS}
			res, err := ev.Topo.Net.Inject(attach.Dev, attach.Port, pkt)
			if err == nil && res.Disposition == dataplane.DispEgressed {
				stats.Delivered++
			} else {
				stats.Undelivered++
			}
			if res.MaxLabelDepth > stats.MaxLabelDepth {
				stats.MaxLabelDepth = res.MaxLabelDepth
			}

		case ltetrace.EvHandover:
			srcLeaf, _, okSrc := leafOfBS(e.BS)
			dstLeaf, dstGroup, okDst := leafOfBS(e.Target)
			if !okSrc || !okDst {
				continue
			}
			owner, known := admitted[e.UE]
			if !known || owner != srcLeaf {
				// The trace hands over UEs we never admitted (thinning);
				// admit at the source first so the procedure has state.
				if _, err := srcLeaf.HandleBearerRequest(core.BearerRequest{
					UE: e.UE, BS: e.BS, Prefix: prefixFor(e.UE), QoS: e.QoS,
				}); err != nil {
					stats.HandoverSkipped++
					continue
				}
				admitted[e.UE] = srcLeaf
			}
			gbs := exposedGBS(dstGroup, dstLeaf)
			if err := srcLeaf.Handover(e.UE, gbs, e.Target); err != nil {
				stats.HandoverSkipped++
				continue
			}
			if srcLeaf == dstLeaf {
				stats.IntraHandovers++
			} else {
				stats.InterHandovers++
				// The UE table row stays at the source leaf (§5.2 keeps
				// the record until a region transfer moves it), so
				// deactivation still goes through srcLeaf.
			}
		}
	}

	// Release everything so repeated windows don't leak paths or
	// reservations, in UE order so rule removals hit the data plane in the
	// same sequence on every replay of the same window.
	ues := make([]string, 0, len(admitted))
	for ue := range admitted {
		ues = append(ues, ue)
	}
	sort.Strings(ues)
	for _, ue := range ues {
		_ = admitted[ue].DeactivateBearer(ue) //softmow:allow errdiscard end-of-window cleanup, the window's stats are already final
	}
	return stats, nil
}
