package workload

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/netem"
)

func impairedConfig(seed int64, prof *netem.Profile) Config {
	return Config{
		Seed: seed, Regions: 2, BSPerRegion: 2, UEs: 60, Events: 400,
		ControlDelay: 200 * time.Microsecond,
		Impair:       prof,
	}
}

func runOnce(t *testing.T, cfg Config) (*Result, string, string, netem.Stats) {
	t.Helper()
	eng, cl, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	res := eng.Run()
	if res.FirstErr != nil {
		t.Fatalf("impaired run failed ops: %d first=%v", res.Failures, res.FirstErr)
	}
	return res, TraceDigest(res.Ops), StateDigest(cl), cl.ImpairmentStats()
}

// TestImpairedRunMatchesClean: a lossy, jittery, reordering control
// channel changes only timings — the replayable trace and final UE-table
// state are byte-identical to the clean delayed run, and no operation
// fails (retried fences absorb the loss).
func TestImpairedRunMatchesClean(t *testing.T) {
	prof := &netem.Profile{
		Jitter:  300 * time.Microsecond,
		Loss:    0.01,
		Reorder: 0.02,
	}
	_, cleanTrace, cleanState, _ := runOnce(t, impairedConfig(11, nil))
	_, impTrace, impState, ns := runOnce(t, impairedConfig(11, prof))
	if impTrace != cleanTrace {
		t.Fatalf("trace digest diverged: clean %s impaired %s", cleanTrace, impTrace)
	}
	if impState != cleanState {
		t.Fatalf("state digest diverged: clean %s impaired %s", cleanState, impState)
	}
	if ns.DroppedLoss == 0 {
		t.Fatal("impairment never dropped a frame — profile not active")
	}
	if ns.Delivered == 0 {
		t.Fatal("no frames delivered through the impaired channel")
	}
}

// TestImpairedSameSeedIdentical: the impaired run is replay-deterministic
// in its logical outcome — same (seed, profile) twice, same digests.
func TestImpairedSameSeedIdentical(t *testing.T) {
	prof := &netem.Profile{Jitter: 200 * time.Microsecond, Loss: 0.02}
	_, tr1, st1, _ := runOnce(t, impairedConfig(5, prof))
	_, tr2, st2, _ := runOnce(t, impairedConfig(5, prof))
	if tr1 != tr2 || st1 != st2 {
		t.Fatalf("same-seed impaired runs diverged: %s/%s vs %s/%s", tr1, st1, tr2, st2)
	}
}

// TestPartitionLivenessRecovery drives the full acceptance cycle on a
// real protocol cluster: a hard partition of one region's control
// channels makes the liveness prober declare every switch suspect and
// mark its links down; healing the partition recovers the suspects and
// targeted rediscovery restores every link — no full refresh, no
// surviving down-links.
func TestPartitionLivenessRecovery(t *testing.T) {
	cl, err := BuildCluster(2, 1, 0, ControlPlane{Delay: 200 * time.Microsecond, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	leaf := cl.Regions[0].Leaf
	upBefore := leaf.NIB.NumUpLinks()
	if upBefore == 0 {
		t.Fatal("leaf bootstrapped with no up links")
	}
	prober := core.NewLivenessProber(leaf, core.LivenessConfig{
		Interval:     time.Hour, // rounds driven explicitly
		Timeout:      50 * time.Millisecond,
		SuspectAfter: 2,
	})
	prober.ProbeOnce()
	if s := prober.Stats(); s.Misses != 0 {
		t.Fatalf("healthy cluster missed probes: %+v", s)
	}

	cl.SetRegionDown(0, true)
	prober.ProbeOnce()
	prober.ProbeOnce()
	if got := prober.Suspects(); len(got) != 4 {
		t.Fatalf("suspects = %v, want all 4 region-0 switches", got)
	}
	if up := leaf.NIB.NumUpLinks(); up != 0 {
		t.Fatalf("%d links still up under full region partition", up)
	}

	cl.SetRegionDown(0, false)
	prober.ProbeOnce()
	if got := prober.Suspects(); len(got) != 0 {
		t.Fatalf("suspects after heal: %v", got)
	}
	if s := prober.Stats(); s.Rediscoveries != 4 {
		t.Fatalf("rediscoveries = %d, want 4", s.Rediscoveries)
	}
	// Rediscovery frames cross the (delayed) wire asynchronously; wait for
	// the NIB to converge back to the bootstrap link set.
	deadline := time.Now().Add(5 * time.Second)
	for leaf.NIB.NumUpLinks() != upBefore {
		if time.Now().After(deadline) {
			t.Fatalf("links restored: %d/%d", leaf.NIB.NumUpLinks(), upBefore)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
