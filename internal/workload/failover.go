package workload

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chaos"
	"repro/internal/ha"
	"repro/internal/nib"
	"repro/internal/simnet"
)

// This file is the failover-under-fire driver: it routes every workload op
// through an HA pair's write-ahead log, kills the master mid-run on a
// chaos.FailoverSchedule, and measures the promoted standby's recovery —
// time-to-recovery, redone and replayed entries, duplicates detected, and
// whether the replicated UE table converged with the real controllers.
//
// Exactly-once execution is preserved across the crash: acked ops whose
// commits were lost are re-delivered by the §6 redo and caught by the
// duplicate detector; abandoned in-flight ops block their lanes until the
// redo executes them; later ops block until recovery. Every op therefore
// executes exactly once in per-UE schedule order, so the run's final
// StateDigest must equal a plain run's at the same seed — the property
// cmd/loadgen -chaos-failover asserts.

// ueImage is the post-op UE row image logged as the physiological redo
// payload: Seq orders images per UE (last writer wins under at-least-once
// re-delivery), Present distinguishes a live row from a detach tombstone.
type ueImage struct {
	Seq     int
	Present bool
	Row     string
}

// opRecord is the write-ahead-log payload for one workload op.
type opRecord struct {
	op Op
	// run executes the op and captures the post-op row image; the outcome
	// lands in err/img/executed.
	run func()
	// id is the log entry ID (set for entries logged without commit).
	id uint64
	// claimed is the execution right: exactly one of the original caller,
	// the promotion redo, or the late-recovery path runs the op.
	claimed atomic.Bool
	// ran closes once run has finished and the image is recorded; the
	// redo waits on it before committing an entry someone else claimed,
	// so the commit's Apply always sees the final image.
	ran chan struct{}
	// done releases a blocked caller once the redo has processed the
	// entry (nil for ops that never block on the redo).
	done chan struct{}

	mu sync.Mutex
	// img is the post-op UE row image. guarded by mu.
	img ueImage
	// err is the op's real outcome, reported to the engine. guarded by mu.
	err error
	// executed marks the op's effects applied. guarded by mu.
	executed bool
}

// opErr returns the op's recorded outcome.
func (rec *opRecord) opErr() error {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	return rec.err
}

// ueTableReplica is the replicated UE table: the latest row image per UE,
// ordered by per-UE Seq so re-delivered entries cannot roll a row back.
// Detach tombstones are retained (with their Seq) so a re-delivered
// pre-detach image cannot resurrect a removed UE after a snapshot restore.
type ueTableReplica struct {
	// rows maps UE name → latest image (tombstones included).
	rows map[string]ueImage
}

func newUETableReplica() *ueTableReplica {
	return &ueTableReplica{rows: make(map[string]ueImage)}
}

// Apply folds one committed entry, last-writer-wins by per-UE Seq.
func (r *ueTableReplica) Apply(e nib.LogEntry) {
	rec, ok := e.Payload.(*opRecord)
	if !ok {
		return
	}
	rec.mu.Lock()
	img, ex := rec.img, rec.executed
	rec.mu.Unlock()
	if !ex {
		return
	}
	ue := UEName(rec.op.UE)
	if cur, ok := r.rows[ue]; ok && cur.Seq >= img.Seq {
		return
	}
	r.rows[ue] = img
}

// Snapshot serializes every row (tombstones included) sorted by UE.
func (r *ueTableReplica) Snapshot() []byte {
	ues := make([]string, 0, len(r.rows))
	for ue := range r.rows {
		ues = append(ues, ue)
	}
	sort.Strings(ues)
	var b strings.Builder
	for _, ue := range ues {
		img := r.rows[ue]
		fmt.Fprintf(&b, "%s %d %t %s\n", ue, img.Seq, img.Present, img.Row)
	}
	return []byte(b.String())
}

// Restore replaces the rows from a Snapshot serialization.
func (r *ueTableReplica) Restore(b []byte) {
	r.rows = make(map[string]ueImage)
	for _, line := range strings.Split(string(b), "\n") {
		f := strings.SplitN(line, " ", 4)
		if len(f) < 3 {
			continue
		}
		var img ueImage
		if _, err := fmt.Sscanf(f[1], "%d", &img.Seq); err != nil {
			continue
		}
		img.Present = f[2] == "true"
		if len(f) == 4 {
			img.Row = f[3]
		}
		r.rows[f[0]] = img
	}
}

// presentRows returns the live (non-tombstone) rows.
func (r *ueTableReplica) presentRows() map[string]string {
	out := make(map[string]string)
	for ue, img := range r.rows {
		if img.Present {
			out[ue] = img.Row
		}
	}
	return out
}

// failoverDriver wraps every engine op in the HA write-ahead discipline
// and injects the scheduled crash.
type failoverDriver struct {
	spec  chaos.FailoverSchedule
	cl    *Cluster
	pair  *ha.Pair
	store *ha.SharedStore
	// genesis is the pre-run UE table (the population BuildCluster
	// attaches before any op is logged), serialized in replica form.
	// Every fresh replica starts from it: those rows exist in the
	// controllers but in no log entry, so a rebuild from an empty
	// state machine could never recover them.
	genesis []byte

	n          atomic.Int64 // op arrival counter (1-based)
	inflight   atomic.Int64 // ops inside the log→process→commit discipline
	abandoned  atomic.Int64
	lost       atomic.Int64
	dups       atomic.Int64
	blocked    atomic.Int64
	reattached atomic.Int64

	crashOnce   sync.Once
	recoverOnce sync.Once
	logOnce     sync.Once
	crashed     chan struct{}
	recovered   chan struct{}

	mu sync.Mutex
	// crashWall stamps the master's death. guarded by mu.
	crashWall time.Time
	// recoveryWall is crash → recovery-complete. guarded by mu.
	recoveryWall time.Duration
	// maxBlockedWait is the longest blackout hold. guarded by mu.
	maxBlockedWait time.Duration
	// logLenAtPromote is the retained log size entering promotion.
	// guarded by mu.
	logLenAtPromote int
}

// wrap is the engine's ExecWrapper: classify the op by arrival index
// against the schedule and run the matching §6 discipline.
func (d *failoverDriver) wrap(op Op, next func() error) error {
	rec := &opRecord{op: op, ran: make(chan struct{})}
	leaf := d.cl.Regions[op.Region].Leaf
	rec.run = func() {
		err := next()
		img := ueImage{Seq: op.Seq}
		if r, ok := leaf.UE(UEName(op.UE)); ok {
			img.Present = true
			img.Row = fmt.Sprintf("%s %s %s %s %d %t", leaf.ID, r.BS, r.Group, r.Prefix, r.QoS, r.Active)
		}
		rec.mu.Lock()
		rec.img, rec.err, rec.executed = img, err, true
		rec.mu.Unlock()
		close(rec.ran)
	}
	n := int(d.n.Add(1))
	K, D, W := d.spec.KillAt, d.spec.LostCommits, d.spec.Abandon
	switch {
	case n < K-D:
		return d.handleLive(rec)
	case n < K:
		// Acked-but-commit-lost window: the op executes and its caller is
		// acknowledged, but the master dies before committing, so the
		// entry stays unfinished and the promotion redo re-delivers it —
		// the duplicate the detector must catch. The lost counter ticks
		// after the append: the promotion quiesce waits for all of these
		// entries to reach the log before scanning it, because an acked
		// op's entry IS durable in the §6 model — only its commit is lost.
		rec.done = make(chan struct{})
		rec.id = d.pair.LogOnly(op.Kind.String(), rec)
		d.lost.Add(1)
		if rec.claimed.CompareAndSwap(false, true) {
			rec.run()
		} else {
			// The promotion redo raced us to the entry and executed it.
			<-rec.done
		}
		return rec.opErr()
	case n < K+W:
		select {
		case <-d.recovered:
			// Recovery already completed (watchdog promotion fired before
			// the abandon window filled): serve on the new master.
			return d.handleLive(rec)
		default:
		}
		// Abandoned in-flight: logged by the dying master, never
		// processed. The caller blocks until the promotion redo executes
		// the entry from the log.
		rec.done = make(chan struct{})
		rec.id = d.pair.LogOnly(op.Kind.String(), rec)
		d.crashOnce.Do(d.markCrash)
		if int(d.abandoned.Add(1)) == W {
			d.promoteAndRecover()
			d.finishStraggler(rec)
		} else {
			select {
			case <-rec.done:
			case <-d.recovered:
				d.finishStraggler(rec)
			}
		}
		return rec.opErr()
	default:
		// Blackout: the master is (about to be) dead and the abandon
		// window is spoken for — hold the op until recovery completes,
		// then serve it on the promoted master.
		t0 := wallClock()
		<-d.recovered
		d.blocked.Add(1)
		d.noteBlockedWait(wallClock().Sub(t0))
		return d.handleLive(rec)
	}
}

// handleLive runs the full log→process→commit discipline. The commit
// outcome is always "done": the logged row image reflects whatever
// actually happened, and the op's real error is reported to the engine
// separately. A caller that catches the master mid-death retries once the
// promotion completes — nothing was logged or executed for it yet.
func (d *failoverDriver) handleLive(rec *opRecord) error {
	for {
		// The inflight count lets the promotion quiesce: it must not scan
		// the log while an op is between Append and Commit, or the op's
		// apply would land on the replica the promotion throws away.
		d.inflight.Add(1)
		herr := d.pair.HandleEvent(rec.op.Kind.String(), rec, func() error {
			rec.claimed.Store(true)
			rec.run()
			return nil
		})
		d.inflight.Add(-1)
		if herr == ha.ErrNoMaster {
			<-d.recovered
			continue
		}
		if herr != nil {
			return herr
		}
		return rec.opErr()
	}
}

// finishStraggler executes and commits an entry the promotion redo never
// saw (logged concurrently with the Unfinished scan). No-op if the redo
// did process it.
func (d *failoverDriver) finishStraggler(rec *opRecord) {
	if rec.claimed.CompareAndSwap(false, true) {
		rec.run()
		d.store.Commit(rec.id, nil)
	}
}

// markCrash kills the master exactly once and arms the watchdog that
// bounds the blackout even if the abandon window never fills.
func (d *failoverDriver) markCrash() {
	d.mu.Lock()
	d.crashWall = wallClock()
	d.mu.Unlock()
	d.pair.KillMaster()
	close(d.crashed)
	go d.watchdog()
}

func (d *failoverDriver) watchdog() {
	time.Sleep(2 * time.Second)
	select {
	case <-d.recovered:
	default:
		d.promoteAndRecover()
	}
}

// promoteAndRecover promotes the standby synchronously (running the §6
// redo), re-arms the pair with a fresh standby, and releases every op
// held hostage by the blackout.
func (d *failoverDriver) promoteAndRecover() {
	// Quiesce: wait out ops still inside log→process→commit on the dead
	// master, and wait for every acked-but-commit-lost op to reach the
	// log (all LostCommits of them arrived before the crash op could —
	// the arrival counter orders them — but their appends may still be
	// in flight). This models the failure-detection gap — by the time
	// the standby promotes, the dead master's in-flight work is either
	// durably in the log or lost; none lands mid-rebuild.
	for d.inflight.Load() != 0 || d.lost.Load() != int64(d.spec.LostCommits) {
		time.Sleep(10 * time.Microsecond)
	}
	d.logOnce.Do(func() {
		n := d.store.Log.Len()
		d.mu.Lock()
		d.logLenAtPromote = n
		d.mu.Unlock()
	})
	d.pair.PromoteNow()
	d.recoverOnce.Do(func() {
		d.pair.AttachStandby("wl-standby-2", d.redo)
		d.mu.Lock()
		d.recoveryWall = wallClock().Sub(d.crashWall)
		d.mu.Unlock()
		close(d.recovered)
	})
}

// redo is the promoted standby's WAL redo handler. Entries already
// executed (acked ops whose commits were lost) are the §6 re-delivery the
// duplicate detector catches — their effects are in place, so they are
// not re-applied. Unexecuted entries (abandoned in-flight ops) run now,
// and their blocked callers are released.
func (d *failoverDriver) redo(e nib.LogEntry) error {
	rec, ok := e.Payload.(*opRecord)
	if !ok {
		return nil
	}
	if rec.claimed.CompareAndSwap(false, true) {
		rec.run()
	} else {
		// Already executed — the §6 re-delivery of an acked op whose
		// commit was lost. Wait for its execution to finish so the
		// commit's apply sees the final image, and count the duplicate
		// instead of re-applying the op's effects.
		<-rec.ran
		d.dups.Add(1)
	}
	if rec.done != nil {
		close(rec.done)
	}
	// Commit "done" regardless of the op's own outcome: the image payload
	// reflects what actually happened.
	return nil
}

// reattachDevices models the promoted standby taking over the southbound
// connections: every leaf's devices re-attach (re-handshake) to the
// controller, the real counterpart of a standby adopting the sockets.
func (d *failoverDriver) reattachDevices() {
	for _, leaf := range d.cl.OwnedLeaves() {
		for _, dev := range leaf.Devices() {
			leaf.AttachDevice(dev)
			d.reattached.Add(1)
		}
	}
}

func (d *failoverDriver) noteBlockedWait(w time.Duration) {
	d.mu.Lock()
	if w > d.maxBlockedWait {
		d.maxBlockedWait = w
	}
	d.mu.Unlock()
}

// checkUETables asserts UE-table convergence: the replicated table
// (rebuilt from checkpoint + delta) must exactly match the rows the live
// leaf controllers actually hold after recovery.
// genesisReplica builds a replica primed with the pre-run UE table.
func (d *failoverDriver) genesisReplica() *ueTableReplica {
	r := newUETableReplica()
	r.Restore(d.genesis)
	return r
}

// captureGenesis snapshots the cluster's pre-run UE table. Genesis rows
// carry Seq -1 so the very first logged op for a UE always supersedes
// its initial-attach row.
func (d *failoverDriver) captureGenesis() {
	r := newUETableReplica()
	for _, leaf := range d.cl.OwnedLeaves() {
		for _, rec := range leaf.UERecords() {
			r.rows[rec.UE] = ueImage{
				Seq:     -1,
				Present: true,
				Row:     fmt.Sprintf("%s %s %s %s %d %t", leaf.ID, rec.BS, rec.Group, rec.Prefix, rec.QoS, rec.Active),
			}
		}
	}
	d.genesis = r.Snapshot()
}

func (d *failoverDriver) checkUETables() (lost int, err error) {
	fresh := d.genesisReplica()
	d.store.Rebuild(fresh)
	replica := fresh.presentRows()
	actual := make(map[string]string)
	for _, leaf := range d.cl.OwnedLeaves() {
		for _, r := range leaf.UERecords() {
			actual[r.UE] = fmt.Sprintf("%s %s %s %s %d %t", leaf.ID, r.BS, r.Group, r.Prefix, r.QoS, r.Active)
		}
	}
	for ue, want := range replica {
		got, ok := actual[ue]
		if !ok {
			lost++
			err = fmt.Errorf("workload: acked UE %s missing from controller tables (lost event)", ue)
		} else if got != want {
			lost++
			err = fmt.Errorf("workload: UE %s diverged: replica %q, controller %q", ue, want, got)
		}
	}
	for ue := range actual {
		if _, ok := replica[ue]; !ok {
			lost++
			err = fmt.Errorf("workload: controller UE %s never committed to the replica", ue)
		}
	}
	return lost, err
}

// FailoverPassStats is one measured failover pass, emitted under the
// report's failover section.
type FailoverPassStats struct {
	SnapshotEvery      int     `json:"snapshot_every"`
	KillAtOp           int     `json:"kill_at_op"`
	LostCommits        int     `json:"lost_commits"`
	AbandonedInFlight  int     `json:"abandoned_in_flight"`
	BlackoutBlockedOps int     `json:"blackout_blocked_ops"`
	MaxBlockedWaitNs   int64   `json:"max_blocked_wait_ns"`
	PromotionLatencyNs int64   `json:"promotion_latency_ns"`
	RecoveryWallNs     int64   `json:"recovery_wall_ns"`
	RedoneEntries      int     `json:"redone_entries"`
	DuplicatesDetected int     `json:"duplicates_detected"`
	EventsLost         int     `json:"events_lost"`
	FromSnapshot       bool    `json:"from_snapshot"`
	SnapshotSeq        int     `json:"snapshot_seq"`
	SnapshotBytes      int     `json:"snapshot_bytes"`
	ReplayedEntries    int     `json:"replayed_entries"`
	LogLenAtPromote    int     `json:"log_len_at_promote"`
	LogLenFinal        int     `json:"log_len_final"`
	TotalLogged        int     `json:"total_logged"`
	DevicesReattached  int     `json:"devices_reattached"`
	ReplicaConverged   bool    `json:"replica_converged"`
	UETableConverged   bool    `json:"ue_table_converged"`
	StateDigest        string  `json:"state_digest"`
	EventsPerSec       float64 `json:"events_per_sec"`
}

// FailoverSection is the report's failover-under-fire block: the same
// schedule run with incremental snapshots and with full-history replay,
// plus the digest cross-check against the plain (no-failover) run.
type FailoverSection struct {
	BaselineStateDigest string             `json:"baseline_state_digest"`
	DigestsMatch        bool               `json:"digests_match"`
	Snapshot            *FailoverPassStats `json:"snapshot_pass"`
	FullReplay          *FailoverPassStats `json:"full_replay_pass"`
	// ReplayReduction is full-replay entries over snapshot-pass entries —
	// the O(history)/O(delta) ratio the incremental snapshots buy.
	ReplayReduction float64 `json:"replay_reduction"`
}

// BuildFailoverSection cross-checks both passes against the plain run's
// state digest and computes the replay-reduction ratio.
func BuildFailoverSection(baselineDigest string, snap, full *FailoverPassStats) *FailoverSection {
	s := &FailoverSection{
		BaselineStateDigest: baselineDigest,
		DigestsMatch:        snap.StateDigest == baselineDigest && full.StateDigest == baselineDigest,
		Snapshot:            snap,
		FullReplay:          full,
	}
	if snap.ReplayedEntries > 0 {
		s.ReplayReduction = float64(full.ReplayedEntries) / float64(snap.ReplayedEntries)
	}
	return s
}

// RunFailoverPass executes cfg's schedule with a planned master crash per
// spec and returns the run result, the cluster (for digesting), and the
// measured pass stats. The run fails if recovery never completes, if
// mastership is not single afterwards, or if the replicated UE table
// diverged from the live controllers.
func RunFailoverPass(cfg Config, spec chaos.FailoverSchedule) (*Result, *Cluster, *FailoverPassStats, error) {
	// Closed-loop only: open-loop lanes block whole workers, which shrinks
	// the abandon window's blocking capacity below the schedule's needs.
	cfg.Mode = ModeClosed
	if err := cfg.normalize(); err != nil {
		return nil, nil, nil, err
	}
	spec, err := spec.Normalized(cfg.Events, cfg.Workers)
	if err != nil {
		return nil, nil, nil, err
	}
	eng, cl, err := NewEngine(cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	store := ha.NewSharedStore()
	store.SnapshotEvery = spec.SnapshotEvery
	d := &failoverDriver{
		spec: spec, cl: cl, store: store,
		crashed: make(chan struct{}), recovered: make(chan struct{}),
	}
	d.captureGenesis()
	store.SetStateMachine(d.genesisReplica())
	d.pair = ha.NewPair(simnet.New(), store, "wl-master", "wl-standby", d.redo)
	d.pair.NewReplica = func() ha.StateMachine { return d.genesisReplica() }
	d.pair.OnPromote = func(ha.PromotionStats) { d.reattachDevices() }
	eng.SetExecWrapper(d.wrap)

	res := eng.Run()

	select {
	case <-d.recovered:
	default:
		return nil, nil, nil, fmt.Errorf("workload: failover never completed (schedule %+v over %d ops)", spec, len(res.Ops))
	}
	if n := d.pair.MasterCount(); n != 1 {
		return nil, nil, nil, fmt.Errorf("workload: %d masters after failover", n)
	}
	ps := d.pair.LastPromotion()
	lostUEs, tableErr := d.checkUETables()

	d.mu.Lock()
	recovery, maxWait, logAtPromote := d.recoveryWall, d.maxBlockedWait, d.logLenAtPromote
	d.mu.Unlock()
	stats := &FailoverPassStats{
		SnapshotEvery:      spec.SnapshotEvery,
		KillAtOp:           spec.KillAt,
		LostCommits:        int(d.lost.Load()),
		AbandonedInFlight:  int(d.abandoned.Load()),
		BlackoutBlockedOps: int(d.blocked.Load()),
		MaxBlockedWaitNs:   maxWait.Nanoseconds(),
		PromotionLatencyNs: ps.Latency.Nanoseconds(),
		RecoveryWallNs:     recovery.Nanoseconds(),
		RedoneEntries:      ps.Redone,
		DuplicatesDetected: int(d.dups.Load()),
		EventsLost:         lostUEs,
		FromSnapshot:       ps.Rebuild.FromSnapshot,
		SnapshotSeq:        ps.Rebuild.SnapshotSeq,
		SnapshotBytes:      ps.Rebuild.SnapshotBytes,
		ReplayedEntries:    ps.Rebuild.Replayed,
		LogLenAtPromote:    logAtPromote,
		LogLenFinal:        store.Log.Len(),
		TotalLogged:        int(store.Log.NextID()),
		DevicesReattached:  int(d.reattached.Load()),
		ReplicaConverged:   ps.Converged,
		UETableConverged:   tableErr == nil,
		StateDigest:        StateDigest(cl),
		EventsPerSec:       res.EventsPerSec(),
	}
	if tableErr != nil {
		return res, cl, stats, fmt.Errorf("workload: UE-table convergence: %w", tableErr)
	}
	return res, cl, stats, nil
}
