package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/ltetrace"
	"repro/internal/simnet"
)

// OpKind enumerates the mobility operations the engine drives.
type OpKind uint8

const (
	// OpAttach attaches a detached UE (first bearer setup).
	OpAttach OpKind = iota
	// OpBearerSetup re-establishes an idle attached UE's bearer.
	OpBearerSetup
	// OpBearerTeardown deactivates an active UE's bearer (UE goes idle).
	OpBearerTeardown
	// OpHandoverIntra moves an active UE to another BS in its region.
	OpHandoverIntra
	// OpHandoverInter moves an active UE to a BS in another region.
	OpHandoverInter
	// OpDetach removes a UE from the network (final teardown).
	OpDetach
	numOpKinds = 6
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpAttach:
		return "attach"
	case OpBearerSetup:
		return "bearer_setup"
	case OpBearerTeardown:
		return "bearer_teardown"
	case OpHandoverIntra:
		return "handover_intra"
	case OpHandoverInter:
		return "handover_inter"
	case OpDetach:
		return "detach"
	default:
		return fmt.Sprintf("op(%d)", int(k))
	}
}

// OpKinds lists every kind in deterministic report order.
func OpKinds() []OpKind {
	return []OpKind{OpAttach, OpBearerSetup, OpBearerTeardown, OpHandoverIntra, OpHandoverInter, OpDetach}
}

// Op is one scheduled mobility operation. Regions and BSes are indices
// into the cluster layout; the UE index names "ue<UE>".
type Op struct {
	Seq    int
	Kind   OpKind
	UE     int
	Region int // region whose leaf executes the op (the UE's serving leaf)
	BS     int // serving/target BS index within Region
	Dst    int // target region (inter handover), else unused
	DstBS  int // target BS within Dst (inter handover), else unused
	Prefix int // region index whose egress prefix the bearer targets
}

// UEName renders a UE index as its wire identifier.
func UEName(ue int) string { return fmt.Sprintf("ue%07d", ue) }

// TraceLine renders the op as one line of the replayable event trace.
func (o Op) TraceLine() string {
	switch o.Kind {
	case OpHandoverInter:
		return fmt.Sprintf("%d %s ue%07d r%d b%d -> r%d b%d", o.Seq, o.Kind, o.UE, o.Region, o.BS, o.Dst, o.DstBS)
	default:
		return fmt.Sprintf("%d %s ue%07d r%d b%d pfx%d", o.Seq, o.Kind, o.UE, o.Region, o.BS, o.Prefix)
	}
}

// Mix weights the operation kinds in the generated schedule. Weights are
// relative; kinds with no eligible UE at a draw are skipped and the rest
// renormalized, so the realized mix tracks the weights only as population
// state allows (nothing can detach before something attaches).
type Mix struct {
	Attach         float64
	BearerSetup    float64
	BearerTeardown float64
	HandoverIntra  float64
	HandoverInter  float64
	Detach         float64
}

// DefaultMix is a churn-heavy blend that keeps all six operations flowing
// once the population warms up.
func DefaultMix() Mix {
	return Mix{Attach: 30, BearerSetup: 12, BearerTeardown: 12,
		HandoverIntra: 25, HandoverInter: 8, Detach: 13}
}

// BearerHeavyMix isolates bearer setup/teardown churn on an attached
// population — the shard-scaling comparison workload.
func BearerHeavyMix() Mix {
	return Mix{Attach: 10, BearerSetup: 45, BearerTeardown: 45}
}

// weights returns the mix as a kind-indexed vector.
func (m Mix) weights() [numOpKinds]float64 {
	return [numOpKinds]float64{
		OpAttach:         m.Attach,
		OpBearerSetup:    m.BearerSetup,
		OpBearerTeardown: m.BearerTeardown,
		OpHandoverIntra:  m.HandoverIntra,
		OpHandoverInter:  m.HandoverInter,
		OpDetach:         m.Detach,
	}
}

// MixFromLTE derives an operation mix and per-BS attach weights from an
// internal/ltetrace diurnal model at the given minute of day. The model's
// per-BS UE-arrival, bearer, and handover rates set the relative attach,
// setup/teardown, and handover weights (teardown mirrors setup and detach
// mirrors attach so the population stays stationary); the per-BS weight
// vector (length regions*bsPerRegion, model BS i ↔ region i/bsPerRegion,
// slot i%bsPerRegion) skews attach and handover targets toward hot cells.
func MixFromLTE(p ltetrace.Params, minute, regions, bsPerRegion int) (Mix, []float64) {
	p.NumBS = regions * bsPerRegion
	m := ltetrace.New(p)
	var bearer, arrival, ho float64
	weights := make([]float64, p.NumBS)
	for i := 0; i < p.NumBS; i++ {
		bearer += m.BearerRate(i, minute)
		arrival += m.UEArrivalRate(i, minute)
		ho += m.HandoverRate(i, minute)
		weights[i] = m.UEArrivalRate(i, minute) + m.BearerRate(i, minute)
	}
	// §7.1: most handovers are intra-group; split the aggregate 80/20.
	mix := Mix{
		Attach:         arrival,
		Detach:         arrival,
		BearerSetup:    bearer,
		BearerTeardown: bearer,
		HandoverIntra:  ho * 0.8,
		HandoverInter:  ho * 0.2,
	}
	return mix, weights
}

// UE generator-side lifecycle states.
const (
	ueDetached = iota
	ueActive   // attached with an installed bearer path
	ueIdle     // attached, bearer deactivated
	ueRoamed   // handed over out of its serving leaf's region (§5.2: the
	// row stays at the source leaf with Group cleared; only detach applies)
	numUEStates
)

// uePool is an O(1) insert/remove/sample set of UE indices in one state.
type uePool struct {
	ids []int
	pos []int // pos[ue] is ue's index in ids, -1 when absent
}

func newUEPool(n int) *uePool {
	p := &uePool{pos: make([]int, n)}
	for i := range p.pos {
		p.pos[i] = -1
	}
	return p
}

func (p *uePool) add(ue int) {
	p.pos[ue] = len(p.ids)
	p.ids = append(p.ids, ue)
}

func (p *uePool) remove(ue int) {
	i := p.pos[ue]
	last := len(p.ids) - 1
	p.ids[i] = p.ids[last]
	p.pos[p.ids[i]] = i
	p.ids = p.ids[:last]
	p.pos[ue] = -1
}

// sample returns a uniformly random member without removing it.
func (p *uePool) sample(rng *rand.Rand) int {
	return p.ids[rng.Intn(len(p.ids))]
}

func (p *uePool) len() int { return len(p.ids) }

// ueGenState is the generator's logical view of one UE.
type ueGenState struct {
	state  uint8
	region uint16 // serving leaf region
	bs     uint16 // serving BS slot within region
	prefix uint16 // bearer target prefix (region index)
}

// Generator expands (seed, config) into a deterministic op schedule.
type Generator struct {
	cfg     Config
	rng     *rand.Rand
	ues     []ueGenState
	pools   [numUEStates]*uePool
	weights [numOpKinds]float64
	// bsCum is the cumulative per-BS weight distribution (uniform when the
	// config carries no LTE model), flattened region-major.
	bsCum []float64
}

// NewGenerator prepares a generator for the config's population.
func NewGenerator(cfg Config) *Generator {
	g := &Generator{
		cfg:     cfg,
		rng:     simnet.RNG(cfg.Seed, "workload/gen"),
		ues:     make([]ueGenState, cfg.UEs),
		weights: cfg.Mix.weights(),
	}
	for s := 0; s < numUEStates; s++ {
		g.pools[s] = newUEPool(cfg.UEs)
	}
	for ue := 0; ue < cfg.UEs; ue++ {
		g.pools[ueDetached].add(ue)
	}
	nBS := cfg.Regions * cfg.BSPerRegion
	g.bsCum = make([]float64, nBS)
	cum := 0.0
	for i := 0; i < nBS; i++ {
		w := 1.0
		if i < len(cfg.BSWeights) && cfg.BSWeights[i] > 0 {
			w = cfg.BSWeights[i]
		}
		cum += w
		g.bsCum[i] = cum
	}
	return g
}

// sampleBS draws a (region, bs-slot) pair from the per-BS weight
// distribution.
func (g *Generator) sampleBS() (region, bs int) {
	x := g.rng.Float64() * g.bsCum[len(g.bsCum)-1]
	lo, hi := 0, len(g.bsCum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if g.bsCum[mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo / g.cfg.BSPerRegion, lo % g.cfg.BSPerRegion
}

// eligible reports whether a kind has a UE to act on right now.
func (g *Generator) eligible(k OpKind) bool {
	switch k {
	case OpAttach:
		return g.pools[ueDetached].len() > 0
	case OpBearerSetup:
		return g.pools[ueIdle].len() > 0
	case OpBearerTeardown, OpHandoverInter:
		return g.pools[ueActive].len() > 0
	case OpHandoverIntra:
		return g.pools[ueActive].len() > 0 && g.cfg.BSPerRegion > 1
	case OpDetach:
		return g.pools[ueActive].len()+g.pools[ueIdle].len()+g.pools[ueRoamed].len() > 0
	default:
		return false
	}
}

// pickKind draws an operation kind from the mix, restricted to kinds with
// an eligible UE.
func (g *Generator) pickKind() (OpKind, bool) {
	var total float64
	for k := 0; k < numOpKinds; k++ {
		if g.weights[k] > 0 && g.eligible(OpKind(k)) {
			total += g.weights[k]
		}
	}
	if total == 0 {
		return 0, false
	}
	x := g.rng.Float64() * total
	for k := 0; k < numOpKinds; k++ {
		if g.weights[k] <= 0 || !g.eligible(OpKind(k)) {
			continue
		}
		x -= g.weights[k]
		if x < 0 {
			return OpKind(k), true
		}
	}
	return OpDetach, true // float roundoff: last eligible kind
}

// GenerateSchedule normalizes the config and expands its schedule without
// building a cluster — for trace dumps and offline inspection.
func GenerateSchedule(cfg Config) ([]Op, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	return NewGenerator(cfg).Generate(), nil
}

// Generate expands the schedule. It is the only RNG consumer in the
// package: execution replays the returned slice verbatim.
func (g *Generator) Generate() []Op {
	ops := make([]Op, 0, g.cfg.Events)
	for seq := 0; seq < g.cfg.Events; seq++ {
		kind, ok := g.pickKind()
		if !ok {
			break // zero mix or empty population
		}
		op := Op{Seq: seq, Kind: kind}
		switch kind {
		case OpAttach:
			ue := g.pools[ueDetached].sample(g.rng)
			region, bs := g.sampleBS()
			prefix := region
			if g.rng.Float64() < g.cfg.RemotePrefixShare {
				prefix = g.rng.Intn(g.cfg.Regions)
			}
			st := &g.ues[ue]
			st.region, st.bs, st.prefix = uint16(region), uint16(bs), uint16(prefix)
			g.move(ue, ueDetached, ueActive)
			op.UE, op.Region, op.BS, op.Prefix = ue, region, bs, prefix
		case OpBearerSetup:
			ue := g.pools[ueIdle].sample(g.rng)
			st := &g.ues[ue]
			g.move(ue, ueIdle, ueActive)
			op.UE, op.Region, op.BS, op.Prefix = ue, int(st.region), int(st.bs), int(st.prefix)
		case OpBearerTeardown:
			ue := g.pools[ueActive].sample(g.rng)
			st := &g.ues[ue]
			g.move(ue, ueActive, ueIdle)
			op.UE, op.Region, op.BS, op.Prefix = ue, int(st.region), int(st.bs), int(st.prefix)
		case OpHandoverIntra:
			ue := g.pools[ueActive].sample(g.rng)
			st := &g.ues[ue]
			nb := g.rng.Intn(g.cfg.BSPerRegion - 1)
			if nb >= int(st.bs) {
				nb++
			}
			op.UE, op.Region, op.BS, op.Prefix = ue, int(st.region), nb, int(st.prefix)
			st.bs = uint16(nb)
		case OpHandoverInter:
			ue := g.pools[ueActive].sample(g.rng)
			st := &g.ues[ue]
			dst := g.rng.Intn(g.cfg.Regions - 1)
			if dst >= int(st.region) {
				dst++
			}
			dstBS := g.rng.Intn(g.cfg.BSPerRegion)
			op.UE, op.Region, op.BS = ue, int(st.region), int(st.bs)
			op.Dst, op.DstBS, op.Prefix = dst, dstBS, int(st.prefix)
			// §5.2: the UE row stays at the source leaf with Group cleared;
			// until it detaches, the source leaf remains its serving leaf.
			g.move(ue, ueActive, ueRoamed)
		case OpDetach:
			ue, from := g.pickDetachable()
			st := &g.ues[ue]
			g.move(ue, from, ueDetached)
			op.UE, op.Region, op.BS, op.Prefix = ue, int(st.region), int(st.bs), int(st.prefix)
		}
		ops = append(ops, op)
	}
	return ops
}

// pickDetachable samples across the three attached pools proportionally.
func (g *Generator) pickDetachable() (ue, state int) {
	na, ni, nr := g.pools[ueActive].len(), g.pools[ueIdle].len(), g.pools[ueRoamed].len()
	x := g.rng.Intn(na + ni + nr)
	switch {
	case x < na:
		return g.pools[ueActive].sample(g.rng), ueActive
	case x < na+ni:
		return g.pools[ueIdle].sample(g.rng), ueIdle
	default:
		return g.pools[ueRoamed].sample(g.rng), ueRoamed
	}
}

func (g *Generator) move(ue, from, to int) {
	g.pools[from].remove(ue)
	g.pools[to].add(ue)
	g.ues[ue].state = uint8(to)
}
