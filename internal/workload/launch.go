package workload

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dataplane"
	"repro/internal/nib"
	"repro/internal/northbound"
	"repro/internal/southbound"
)

// NewDistRoot creates the launcher-side root controller for an R-region
// distributed cluster, mirroring the level, index, and shard count the
// in-process NewTwoLevel build would give it.
func NewDistRoot(regions, shards int) *core.Controller {
	root := core.NewController("root", 2, regions)
	if shards != 0 {
		root.SetUEShardCount(shards)
	}
	return root
}

// FinishDistRoot completes the root's bootstrap once every region child is
// attached (in region order) — the distributed counterpart of the
// Hierarchy's finishLevel. In-band discovery flushes each child's view,
// but the ring links joining regions cannot be discovered: their
// endpoints' emission frames die on stub ports in the neighbor-less
// region slices. Those links are instead stitched from the features every
// child exposes — each region's G-switch carries exactly one internal
// non-radio port over its egress switch (ring out) and one over its
// access switch (ring in) — using the same latency and bandwidth the
// in-process ring is built with, so the root's NIB ends up identical.
func FinishDistRoot(root *core.Controller, devs []*core.ConnDevice) error {
	root.RunDiscovery()
	if err := northbound.FenceDiscovery(devs); err != nil {
		return err
	}
	type ringPorts struct {
		gsw     dataplane.DeviceID
		out, in dataplane.PortID
	}
	ports := make([]ringPorts, len(devs))
	for k, d := range devs {
		fr := d.Features()
		rp := ringPorts{gsw: fr.Device}
		eDev := dataplane.DeviceID(fmt.Sprintf("E%d", k))
		aDev := dataplane.DeviceID(fmt.Sprintf("A%d", k))
		for _, p := range fr.Ports {
			if p.External || p.Radio != "" {
				continue
			}
			switch p.Underlying.Dev {
			case eDev:
				rp.out = p.ID
			case aDev:
				rp.in = p.ID
			}
		}
		if rp.out == 0 || rp.in == 0 {
			return fmt.Errorf("workload: region %d (%s) exposes no ring ports", k, fr.Device)
		}
		ports[k] = rp
	}
	for k := range ports {
		n := (k + 1) % len(ports)
		root.NIB.PutLink(nib.Link{
			A:         dataplane.PortRef{Dev: ports[k].gsw, Port: ports[k].out},
			B:         dataplane.PortRef{Dev: ports[n].gsw, Port: ports[n].in},
			Latency:   4 * time.Millisecond,
			Bandwidth: 10_000,
			Up:        true,
		})
	}
	core.RefreshDerived(root)
	return nil
}

// SliceBounds splits R regions into P contiguous [lo, hi) slices, one per
// process, the first regions%procs slices one region larger.
func SliceBounds(regions, procs int) [][2]int {
	base, extra := regions/procs, regions%procs
	bounds := make([][2]int, procs)
	lo := 0
	for i := range bounds {
		hi := lo + base
		if i < extra {
			hi++
		}
		bounds[i] = [2]int{lo, hi}
		lo = hi
	}
	return bounds
}

// distProc is the launcher's handle on one spawned region process.
type distProc struct {
	cmd    *exec.Cmd
	in     io.WriteCloser
	out    *bufio.Scanner
	lo, hi int
}

// send writes one command line to the process.
func (p *distProc) send(format string, args ...interface{}) error {
	_, err := fmt.Fprintf(p.in, format+"\n", args...)
	return err
}

// expect reads the next line and checks its first token, returning the
// remainder. An ERROR line is surfaced as an error.
func (p *distProc) expect(verb string) (string, error) {
	if !p.out.Scan() {
		if err := p.out.Err(); err != nil {
			return "", fmt.Errorf("workload: region proc died: %w", err)
		}
		return "", fmt.Errorf("workload: region proc closed stdout awaiting %s", verb)
	}
	line := p.out.Text()
	rest, ok := strings.CutPrefix(line, verb+" ")
	if !ok && line != verb {
		if msg, isErr := strings.CutPrefix(line, "ERROR "); isErr {
			return "", fmt.Errorf("workload: region proc: %s", msg)
		}
		return "", fmt.Errorf("workload: region proc said %q, want %s", line, verb)
	}
	return rest, nil
}

// RunDistributed executes cfg's schedule on a multi-process cluster: the
// launcher hosts the root controller and spawns procs region processes
// (each exec'd as regionArgv), splits the regions contiguously among
// them, assembles the tree over localhost TCP, and runs every process's
// owned slice of the same generated schedule concurrently. The returned
// report carries the composed replay digests — comparable, by
// construction, to an in-process run of the same config — plus per-process
// and aggregate throughput.
func RunDistributed(cfg Config, procs int, regionArgv []string) (*Report, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if procs < 1 || procs > cfg.Regions {
		return nil, fmt.Errorf("workload: procs must be in [1, %d], got %d", cfg.Regions, procs)
	}
	if len(regionArgv) == 0 {
		return nil, fmt.Errorf("workload: empty region argv")
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer ln.Close()

	bounds := SliceBounds(cfg.Regions, procs)
	ps := make([]*distProc, procs)
	owner := make([]*distProc, cfg.Regions)
	defer func() {
		for _, p := range ps {
			if p != nil && p.cmd.Process != nil {
				p.in.Close()
				_ = p.cmd.Process.Kill() //softmow:allow errdiscard best-effort teardown of an already-failed launch
				_ = p.cmd.Wait()         //softmow:allow errdiscard best-effort teardown of an already-failed launch
			}
		}
	}()
	for i := range ps {
		cmd := exec.Command(regionArgv[0], regionArgv[1:]...)
		cmd.Stderr = os.Stderr
		in, err := cmd.StdinPipe()
		if err != nil {
			return nil, err
		}
		outPipe, err := cmd.StdoutPipe()
		if err != nil {
			return nil, err
		}
		if err := cmd.Start(); err != nil {
			return nil, fmt.Errorf("workload: start region proc %d: %w", i, err)
		}
		out := bufio.NewScanner(outPipe)
		out.Buffer(make([]byte, 0, 1<<20), 1<<20)
		p := &distProc{cmd: cmd, in: in, out: out, lo: bounds[i][0], hi: bounds[i][1]}
		ps[i] = p
		for k := p.lo; k < p.hi; k++ {
			owner[k] = p
		}
		rc := RegionConfig{Config: cfg, Lo: p.lo, Hi: p.hi, Addr: ln.Addr().String(), Proc: i}
		doc, err := json.Marshal(rc)
		if err != nil {
			return nil, err
		}
		if err := p.send("%s", doc); err != nil {
			return nil, err
		}
		if _, err := p.expect("READY"); err != nil {
			return nil, fmt.Errorf("proc %d: %w", i, err)
		}
	}

	// Assemble the tree: children attach in region order, so the root's
	// device and child bookkeeping matches the in-process build.
	root := NewDistRoot(cfg.Regions, cfg.Shards)
	devs := make([]*core.ConnDevice, 0, cfg.Regions)
	for k := 0; k < cfg.Regions; k++ {
		if err := owner[k].send("CONNECT %d", k); err != nil {
			return nil, err
		}
		nc, err := ln.Accept()
		if err != nil {
			return nil, err
		}
		d, err := northbound.AttachRemoteChild(root, southbound.NewBinConn(nc))
		if err != nil {
			return nil, fmt.Errorf("workload: attach region %d: %w", k, err)
		}
		devs = append(devs, d)
		if _, err := owner[k].expect("CONNECTED"); err != nil {
			return nil, fmt.Errorf("region %d: %w", k, err)
		}
	}
	if err := FinishDistRoot(root, devs); err != nil {
		return nil, err
	}
	// Interdomain propagation in region order — the root appends route
	// options in push order and its tie-break depends on it.
	for k := 0; k < cfg.Regions; k++ {
		if err := owner[k].send("PROP %d", k); err != nil {
			return nil, err
		}
		if _, err := owner[k].expect("PROPPED"); err != nil {
			return nil, fmt.Errorf("region %d: %w", k, err)
		}
	}

	// Run every slice concurrently; collect results in proc order (reads
	// simply block until each process finishes).
	for i, p := range ps {
		if err := p.send("RUN"); err != nil {
			return nil, fmt.Errorf("proc %d: %w", i, err)
		}
	}
	results := make([]ProcResult, procs)
	for i, p := range ps {
		rest, err := p.expect("RESULT")
		if err != nil {
			return nil, fmt.Errorf("proc %d: %w", i, err)
		}
		if err := json.Unmarshal([]byte(rest), &results[i]); err != nil {
			return nil, fmt.Errorf("proc %d: bad result: %w", i, err)
		}
	}

	// Compose the state digest: the root's own section, then each leaf's
	// (shipped via section files) in region order.
	sections := [][]byte{StateSection(root)}
	finalUEs := root.UECount()
	sectionByRegion := make(map[int][]byte, cfg.Regions)
	for i, res := range results {
		for j, path := range res.SectionFiles {
			sec, err := os.ReadFile(path)
			if err != nil {
				return nil, fmt.Errorf("proc %d: %w", i, err)
			}
			_ = os.Remove(path) //softmow:allow errdiscard temp-file cleanup, the OS reaps leftovers
			sectionByRegion[res.Lo+j] = sec
		}
	}
	for k := 0; k < cfg.Regions; k++ {
		sec, ok := sectionByRegion[k]
		if !ok {
			return nil, fmt.Errorf("workload: no state section for region %d", k)
		}
		sections = append(sections, sec)
		finalUEs += bytes.Count(sec, []byte("\n")) - 1 // rows, minus the header line
	}

	for i, p := range ps {
		if err := p.send("QUIT"); err != nil {
			return nil, fmt.Errorf("proc %d: %w", i, err)
		}
		if _, err := p.expect("BYE"); err != nil {
			return nil, fmt.Errorf("proc %d: %w", i, err)
		}
		p.in.Close()
		if err := p.cmd.Wait(); err != nil {
			return nil, fmt.Errorf("proc %d: %w", i, err)
		}
		ps[i] = nil
	}

	return assembleDistReport(cfg, procs, results, sections, finalUEs), nil
}

// assembleDistReport merges per-process results into one report. The
// cluster-level rate divides total executed events by the slowest
// process's wall time: all slices start together, so that is when the
// last event lands.
func assembleDistReport(cfg Config, procs int, results []ProcResult, sections [][]byte, finalUEs int) *Report {
	rep := &Report{
		Config:      buildReportConfig(cfg),
		Ops:         make(map[string]OpStats),
		TraceDigest: TraceDigest(NewGenerator(cfg).Generate()),
		StateDigest: ComposeStateDigest(sections),
		FinalUEs:    finalUEs,
		Distributed: &DistributedStats{Procs: procs},
	}
	var maxElapsed float64
	for _, res := range results {
		rep.Events += res.Events
		rep.Failures += res.Failures
		rep.Stalls += res.Stalls
		if res.ElapsedSec > maxElapsed {
			maxElapsed = res.ElapsedSec
		}
		eps := 0.0
		if res.ElapsedSec > 0 {
			eps = float64(res.Events) / res.ElapsedSec
		}
		rep.Distributed.Per = append(rep.Distributed.Per, RegionProcStats{
			Proc: res.Proc, Lo: res.Lo, Hi: res.Hi,
			Events: res.Events, Failures: res.Failures,
			ElapsedSec: res.ElapsedSec, EventsPerSec: eps,
			RegionEvents: res.RegionEvents,
		})
		for kind, st := range res.PerOp {
			rep.Ops[kind] = mergeOpStats(rep.Ops[kind], st)
		}
	}
	rep.ElapsedSec = maxElapsed
	if maxElapsed > 0 {
		rep.EventsPerSec = float64(rep.Events) / maxElapsed
	}
	rep.Distributed.AggregateEPS = rep.EventsPerSec
	return rep
}

// mergeOpStats combines two per-kind stats blocks: counts add, means
// combine count-weighted, and the order statistics take the pessimistic
// maximum (exact cross-process quantiles would need the raw samples).
func mergeOpStats(a, b OpStats) OpStats {
	total := a.Count + b.Count
	if total == 0 {
		return OpStats{}
	}
	m := OpStats{Count: total, Failures: a.Failures + b.Failures}
	m.Mean = time.Duration((int64(a.Mean)*a.Count + int64(b.Mean)*b.Count) / total)
	m.P50 = maxDur(a.P50, b.P50)
	m.P99 = maxDur(a.P99, b.P99)
	m.Max = maxDur(a.Max, b.Max)
	return m
}

// maxDur returns the larger duration.
func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
