package workload

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/netem"
	"repro/internal/northbound"
	"repro/internal/southbound"
)

// RegionConfig is the JSON document a launcher hands a region process on
// stdin before any command: the shared (already normalized) workload
// config, the contiguous region slice the process owns, and the
// launcher's northbound listener address.
type RegionConfig struct {
	Config Config `json:"config"`
	Lo     int    `json:"lo"`
	Hi     int    `json:"hi"`
	Addr   string `json:"addr"`
	Proc   int    `json:"proc"`
}

// ProcResult is the JSON document a region process reports after RUN.
// UE-table state rides in section files (one per owned region, in region
// order) rather than inline: at the 1M-UE scale the sections are tens of
// megabytes, which has no business on a line-oriented control pipe.
type ProcResult struct {
	Proc         int                `json:"proc"`
	Lo           int                `json:"lo"`
	Hi           int                `json:"hi"`
	Events       int                `json:"events"`
	Failures     int64              `json:"failures"`
	Stalls       int64              `json:"stalls"`
	ElapsedSec   float64            `json:"elapsed_sec"`
	RegionEvents map[string]int     `json:"region_events"`
	PerOp        map[string]OpStats `json:"per_op"`
	FirstErr     string             `json:"first_err,omitempty"`
	SectionFiles []string           `json:"section_files"`
}

// RegionProc is one region process of a distributed cluster: the owned
// data-plane slice, its leaves' northbound links, and the engine that
// executes the owned part of the schedule.
type RegionProc struct {
	rc    RegionConfig
	cl    *Cluster
	links map[int]*northbound.ParentConn
}

// NewRegionProc validates the config and builds the owned region slice.
func NewRegionProc(rc RegionConfig) (*RegionProc, error) {
	if err := rc.Config.normalize(); err != nil {
		return nil, err
	}
	cl, err := BuildRegionSlice(rc.Config.Regions, rc.Config.BSPerRegion,
		rc.Config.Shards, rc.Config.controlPlane(), rc.Lo, rc.Hi)
	if err != nil {
		return nil, err
	}
	return &RegionProc{rc: rc, cl: cl, links: make(map[int]*northbound.ParentConn)}, nil
}

// Cluster exposes the owned slice (tests drive it directly).
func (p *RegionProc) Cluster() *Cluster { return p.cl }

// ConnectRegion dials the launcher and attaches region k's leaf over the
// northbound wire. The launcher sequences these calls across processes in
// region order, so its root sees children attach deterministically.
func (p *RegionProc) ConnectRegion(k int) error {
	if k < p.rc.Lo || k >= p.rc.Hi {
		return fmt.Errorf("workload: region %d not owned by proc %d [%d, %d)", k, p.rc.Proc, p.rc.Lo, p.rc.Hi)
	}
	nc, err := net.Dial("tcp", p.rc.Addr)
	if err != nil {
		return err
	}
	var conn southbound.Conn = southbound.NewBinConn(nc)
	if prof := p.rc.Config.ImpairNB; prof != nil {
		// The northbound wire gets its own impairment stream, keyed by the
		// leaf name so every region's channel draws independently.
		conn = southbound.NewImpairedConn(conn, *prof,
			netem.LinkRNG(p.rc.Config.Seed, fmt.Sprintf("nb/L%d", k)))
	}
	pc, err := northbound.Connect(p.cl.Regions[k].Leaf, conn)
	if err != nil {
		nc.Close()
		return err
	}
	p.links[k] = pc
	return nil
}

// Propagate pushes region k's interdomain routes to the launcher's root.
func (p *RegionProc) Propagate(k int) error {
	if k < p.rc.Lo || k >= p.rc.Hi {
		return fmt.Errorf("workload: region %d not owned by proc %d", k, p.rc.Proc)
	}
	return p.cl.Regions[k].Leaf.PropagateInterdomainErr()
}

// Run generates the full schedule from the shared (seed, config), filters
// it to the owned regions, and executes it.
func (p *RegionProc) Run() (*ProcResult, error) {
	eng, err := NewEngineOn(p.rc.Config, p.cl)
	if err != nil {
		return nil, err
	}
	owned := p.cl.OwnedOps(NewGenerator(p.rc.Config).Generate())
	res := eng.RunOps(owned)
	pr := &ProcResult{
		Proc: p.rc.Proc, Lo: p.rc.Lo, Hi: p.rc.Hi,
		Events: len(res.Ops), Failures: res.Failures, Stalls: res.Stalls,
		ElapsedSec:   res.Elapsed.Seconds(),
		RegionEvents: make(map[string]int, p.rc.Hi-p.rc.Lo),
		PerOp:        res.PerOp,
	}
	for _, op := range owned {
		pr.RegionEvents[strconv.Itoa(op.Region)]++
	}
	if res.FirstErr != nil {
		pr.FirstErr = res.FirstErr.Error()
	}
	return pr, nil
}

// WriteSections renders each owned leaf's state-digest section to a temp
// file and returns the paths in region order.
func (p *RegionProc) WriteSections() ([]string, error) {
	paths := make([]string, 0, p.rc.Hi-p.rc.Lo)
	for k := p.rc.Lo; k < p.rc.Hi; k++ {
		f, err := os.CreateTemp("", fmt.Sprintf("softmow-section-L%d-*", k))
		if err != nil {
			return nil, err
		}
		_, werr := f.Write(StateSection(p.cl.Regions[k].Leaf))
		cerr := f.Close()
		if werr != nil || cerr != nil {
			return nil, fmt.Errorf("workload: section %s: %v / %v", f.Name(), werr, cerr)
		}
		paths = append(paths, f.Name())
	}
	return paths, nil
}

// Drain flushes in-flight control-plane work — outstanding northbound
// requests and, when the slice attaches switches over delayed pipes, the
// southbound fences behind them — so a teardown (QUIT or SIGTERM) never
// strands a half-installed batch behind a closed connection.
func (p *RegionProc) Drain(timeout time.Duration) error {
	var firstErr error
	for k := p.rc.Lo; k < p.rc.Hi; k++ {
		if pc := p.links[k]; pc != nil {
			if err := pc.Drain(timeout); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		leaf := p.cl.Regions[k].Leaf
		for _, d := range leaf.Devices() {
			if cd, ok := d.(*core.ConnDevice); ok {
				if err := cd.Drain(timeout); err != nil && firstErr == nil {
					firstErr = err
				}
			}
		}
	}
	return firstErr
}

// Close tears down the northbound connections, then the slice's delayed
// southbound attachments, waiting until every agent and device goroutine
// has exited.
func (p *RegionProc) Close() {
	for _, pc := range p.links {
		_ = pc.Close() //softmow:allow errdiscard teardown of an already-drained conn; the transport is being discarded either way
	}
	p.cl.Close()
}

// RegionMain runs one region process's command loop against a launcher:
// read the RegionConfig line, then serve CONNECT/PROP/RUN until QUIT.
// register, if non-nil, receives the constructed RegionProc before READY
// is reported — cmd/region uses it to wire the SIGTERM drain path.
func RegionMain(r io.Reader, w io.Writer, register func(*RegionProc)) error {
	in := bufio.NewScanner(r)
	in.Buffer(make([]byte, 0, 1<<20), 1<<20)
	reply := func(format string, args ...interface{}) {
		fmt.Fprintf(w, format+"\n", args...)
	}
	if !in.Scan() {
		return fmt.Errorf("workload: no region config on stdin: %v", in.Err())
	}
	var rc RegionConfig
	if err := json.Unmarshal(in.Bytes(), &rc); err != nil {
		return fmt.Errorf("workload: bad region config: %w", err)
	}
	p, err := NewRegionProc(rc)
	if err != nil {
		reply("ERROR %v", err)
		return err
	}
	if register != nil {
		register(p)
	}
	defer p.Close()
	reply("READY %d", rc.Proc)
	for in.Scan() {
		fields := strings.Fields(in.Text())
		if len(fields) == 0 {
			continue
		}
		arg := func() (int, error) {
			if len(fields) < 2 {
				return 0, fmt.Errorf("workload: %s needs a region argument", fields[0])
			}
			return strconv.Atoi(fields[1])
		}
		switch fields[0] {
		case "CONNECT":
			k, err := arg()
			if err == nil {
				err = p.ConnectRegion(k)
			}
			if err != nil {
				reply("ERROR %v", err)
				return err
			}
			reply("CONNECTED %d", k)
		case "PROP":
			k, err := arg()
			if err == nil {
				err = p.Propagate(k)
			}
			if err != nil {
				reply("ERROR %v", err)
				return err
			}
			reply("PROPPED %d", k)
		case "RUN":
			pr, err := p.Run()
			if err == nil {
				pr.SectionFiles, err = p.WriteSections()
			}
			if err != nil {
				reply("ERROR %v", err)
				return err
			}
			doc, err := json.Marshal(pr)
			if err != nil {
				reply("ERROR %v", err)
				return err
			}
			reply("RESULT %s", doc)
		case "QUIT":
			if err := p.Drain(5 * time.Second); err != nil {
				// Report but still exit cleanly: the launcher is tearing
				// the cluster down either way.
				fmt.Fprintf(os.Stderr, "region proc %d: drain: %v\n", rc.Proc, err)
			}
			reply("BYE %d", rc.Proc)
			return nil
		default:
			err := fmt.Errorf("workload: unknown command %q", fields[0])
			reply("ERROR %v", err)
			return err
		}
	}
	return in.Err()
}
