// Package workload is the deterministic UE traffic engine: it drives
// attach/detach, bearer setup/teardown, and intra-/inter-region handovers
// against a live controller hierarchy at configurable rates, the event
// load the ROADMAP's "millions of users" north star asks the control plane
// to absorb (§7.2 runs the evaluation at this scale).
//
// The engine splits generation from execution so load can be replayed:
//
//   - A Generator expands a seed into a totally ordered operation
//     schedule using only simnet.RNG streams and per-UE state machines —
//     no wall clock, no global rand, no map iteration. Same seed and
//     config, same schedule, byte for byte (TraceDigest).
//   - The Engine executes the schedule across worker lanes keyed by
//     hash(UE), so each UE's operations run in generation order even
//     though different UEs proceed concurrently. The final logical UE
//     table state is therefore seed-deterministic too (StateDigest),
//     while wall-clock timings (latency histograms, events/sec) are
//     measurements and vary run to run.
//
// Open-loop mode paces the schedule at a target rate under a bounded
// in-flight admission window (backpressure stalls are counted rather than
// letting the queue grow without bound); closed-loop mode lets each lane
// issue its next operation as soon as the previous one completes. Arrival
// mixes are configurable directly (Mix) or derived from an
// internal/ltetrace diurnal model's per-BS bearer/attach/handover rates
// (MixFromLTE).
//
// cmd/loadgen wires the engine to an N-region ring topology (BuildCluster)
// and emits BENCH_workload.json: sustained events/sec, p50/p99 latency per
// operation type, and the sharded-versus-single-mutex UE store comparison.
package workload
