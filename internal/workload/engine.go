package workload

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/netem"
)

// Mode selects how the engine paces the schedule.
type Mode string

const (
	// ModeClosed lets every lane issue its next operation the moment the
	// previous one completes — the throughput-probe mode.
	ModeClosed Mode = "closed"
	// ModeOpen admits operations at a target arrival rate under a bounded
	// in-flight window, counting backpressure stalls.
	ModeOpen Mode = "open"
)

// Config parameterizes one workload run. The zero value is not usable;
// normalize fills defaults and validates.
type Config struct {
	Seed        int64
	Regions     int
	BSPerRegion int
	UEs         int
	Events      int
	// Shards is the UE-store shard count applied to every controller
	// (0 = core.DefaultUEShards, 1 = coarse single-mutex baseline).
	Shards int
	Mode   Mode
	// Workers is the number of execution lanes. Operations are keyed to
	// lanes by UE, so same-UE operations execute in schedule order while
	// distinct UEs proceed in parallel.
	Workers int
	// MaxInFlight bounds admitted-but-unfinished operations. In open-loop
	// mode it is the admission window; in closed-loop mode it sets the
	// per-lane pipeline depth (MaxInFlight/Workers, min 1): each lane
	// keeps that many distinct-UE operations in flight, overlapping their
	// southbound round trips while same-UE operations stay ordered.
	MaxInFlight int
	// RatePerSec is the open-loop target arrival rate; 0 means admit as
	// fast as the window allows.
	RatePerSec float64
	Mix        Mix
	// BSWeights optionally skews attach/handover targets per BS
	// (region-major, length Regions*BSPerRegion); nil means uniform.
	BSWeights []float64
	// RemotePrefixShare is the probability an attach targets a uniformly
	// random region's prefix instead of the serving region's own — the
	// knob that exercises cross-region transit paths.
	RemotePrefixShare float64
	// ControlDelay emulates the controller↔switch control-channel
	// propagation delay (0 = direct in-process devices). With a nonzero
	// delay every physical switch attaches over the real southbound
	// protocol — an agent served over a pipe whose replies are held back
	// by an impaired conn — so operations are I/O-bound and throughput
	// scaling comes from pipelining fences across devices and from
	// overlapping waits across concurrent UEs.
	ControlDelay time.Duration
	// Impair layers a netem impairment profile (jitter, loss, reordering,
	// rate caps, partition windows) onto every leaf↔switch control
	// channel. A non-nil profile forces protocol attachment even when
	// ControlDelay is zero; its delay and jitter add on top of
	// ControlDelay. Per-link randomness derives from Seed.
	Impair *netem.Profile
	// ImpairNB impairs the child→parent northbound wire of a distributed
	// region slice (applied when the slice dials its launcher); in-process
	// clusters ignore it.
	ImpairNB *netem.Profile
	// FixedTimeout disables the RTT-adaptive fence deadlines on attached
	// ConnDevices — the comparison baseline the impairment matrix
	// measures adaptive timeouts against.
	FixedTimeout bool
	// FenceTimeout overrides the southbound request timeout (0 keeps the
	// DialDevice default).
	FenceTimeout time.Duration
}

// EffectiveProfile is the full per-link southbound impairment profile
// this config produces — the netem profile with ControlDelay folded in —
// echoed into reports as scenario provenance.
func (c *Config) EffectiveProfile() netem.Profile { return c.controlPlane().effective() }

// controlPlane assembles the cluster control-plane description from the
// config's channel knobs.
func (c *Config) controlPlane() ControlPlane {
	return ControlPlane{
		Delay:        c.ControlDelay,
		Impair:       c.Impair,
		Seed:         c.Seed,
		FixedTimeout: c.FixedTimeout,
		FenceTimeout: c.FenceTimeout,
	}
}

// normalize applies defaults in place and validates the config.
func (c *Config) normalize() error {
	if c.Regions < 2 {
		return fmt.Errorf("workload: need at least 2 regions, got %d", c.Regions)
	}
	if c.BSPerRegion < 1 {
		c.BSPerRegion = 1
	}
	if c.UEs < 1 {
		return fmt.Errorf("workload: need at least 1 UE, got %d", c.UEs)
	}
	if c.Events < 1 {
		return fmt.Errorf("workload: need at least 1 event, got %d", c.Events)
	}
	if c.Mode == "" {
		c.Mode = ModeClosed
	}
	if c.Mode != ModeClosed && c.Mode != ModeOpen {
		return fmt.Errorf("workload: unknown mode %q", c.Mode)
	}
	if c.Workers < 1 {
		// Lanes are I/O-bound whenever ControlDelay is set (each op sleeps
		// through its southbound round trips), so the useful lane count is
		// well above the core count.
		c.Workers = 4 * runtime.GOMAXPROCS(0)
		if c.Workers < 8 {
			c.Workers = 8
		}
	}
	if c.MaxInFlight < 1 {
		c.MaxInFlight = 4 * c.Workers
	}
	if c.Mix == (Mix{}) {
		c.Mix = DefaultMix()
	}
	return nil
}

// OpStats summarizes one operation kind over a run.
type OpStats struct {
	Count    int64         `json:"count"`
	Failures int64         `json:"failures"`
	Mean     time.Duration `json:"mean_ns"`
	P50      time.Duration `json:"p50_ns"`
	P99      time.Duration `json:"p99_ns"`
	Max      time.Duration `json:"max_ns"`
}

// Result is the outcome of one Engine.Run.
type Result struct {
	// Ops is the executed schedule, in generation order.
	Ops []Op
	// Elapsed is the wall-clock execution time (generation excluded).
	Elapsed time.Duration
	// Stalls counts open-loop admissions that found the in-flight window
	// full and had to wait (backpressure events).
	Stalls int64
	// Failures is the total failed operations; FirstErr retains one
	// representative error for diagnostics.
	Failures int64
	FirstErr error
	// PerOp maps kind → stats, keyed by OpKind.String().
	PerOp map[string]OpStats
}

// EventsPerSec is the sustained execution rate.
func (r *Result) EventsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(len(r.Ops)) / r.Elapsed.Seconds()
}

// Engine executes a generated schedule against a cluster.
type Engine struct {
	cfg Config
	cl  *Cluster

	// Latency histograms are per-engine instances (not the process-global
	// metrics registry) so repeated runs in one process don't pollute each
	// other — cmd/loadgen runs baseline and sharded passes back to back.
	hists    [numOpKinds]metrics.DurationHist
	fails    [numOpKinds]atomic.Int64
	stalls   atomic.Int64
	firstErr atomic.Pointer[opError]
	// tokens is the open-loop in-flight window: buffered to MaxInFlight,
	// one send per admission, one receive per completion.
	tokens chan struct{}
	// wrap, when set, intercepts every op execution (SetExecWrapper).
	wrap ExecWrapper
}

// ExecWrapper intercepts one op execution: it receives the op and a next
// function that performs the real dispatch, and returns the op's outcome.
// The failover driver uses it to route every op through the HA write-ahead
// log and to hold ops hostage across a planned master crash. A wrapper
// must call next at most once and must preserve per-UE completion order
// (an op's wrapper invocation only returns once the op's effects are
// visible), or the replayable state digest breaks.
type ExecWrapper func(op Op, next func() error) error

// SetExecWrapper installs the exec interceptor. Call before Run; the
// engine does not synchronize wrapper replacement with in-flight ops.
func (e *Engine) SetExecWrapper(w ExecWrapper) { e.wrap = w }

type opError struct {
	op  Op
	err error
}

// NewEngine validates the config, builds the cluster, and prepares the
// engine. The caller reads cluster state (digests, invariants) after Run.
func NewEngine(cfg Config) (*Engine, *Cluster, error) {
	if err := cfg.normalize(); err != nil {
		return nil, nil, err
	}
	cl, err := BuildCluster(cfg.Regions, cfg.BSPerRegion, cfg.Shards, cfg.controlPlane())
	if err != nil {
		return nil, nil, err
	}
	return &Engine{cfg: cfg, cl: cl}, cl, nil
}

// NewEngineOn prepares an engine over an already built cluster — the
// region-slice path, where the caller has connected the slice's leaves to
// a remote parent before any load runs. The caller must pass RunOps only
// ops whose Region the cluster owns.
func NewEngineOn(cfg Config, cl *Cluster) (*Engine, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	return &Engine{cfg: cfg, cl: cl}, nil
}

// OwnedOps filters a generated schedule down to the ops this cluster
// executes: those targeting regions in [Lo, Hi). Per-UE order is
// preserved; an op's execution never depends on another region's ops
// because roamed UEs stay pinned to their source region's leaf.
func (cl *Cluster) OwnedOps(ops []Op) []Op {
	if cl.Lo == 0 && cl.Hi == len(cl.Regions) {
		return ops
	}
	out := make([]Op, 0, len(ops)/(len(cl.Regions)/(cl.Hi-cl.Lo))+1)
	for _, op := range ops {
		if op.Region >= cl.Lo && op.Region < cl.Hi {
			out = append(out, op)
		}
	}
	return out
}

// wallClock reads the wall clock for latency measurement only; nothing
// replayable (schedule, UE state, digests) depends on the value.
func wallClock() time.Time {
	return time.Now() //softmow:allow determinism latency measurement only, never feeds replayable state
}

// Run generates the schedule and executes it, returning measurements.
// The schedule and the final logical UE-table state depend only on
// (seed, config); timings and stall counts are measurements.
func (e *Engine) Run() *Result {
	return e.RunOps(NewGenerator(e.cfg).Generate())
}

// RunOps executes a pre-generated (possibly region-filtered) schedule.
// Distributed runs generate the full schedule in every process from the
// shared (seed, config) and hand each engine its owned subset.
func (e *Engine) RunOps(ops []Op) *Result {
	start := wallClock()
	if e.cfg.Mode == ModeClosed {
		e.runClosed(ops)
	} else {
		e.runOpen(ops)
	}
	elapsed := wallClock().Sub(start)

	res := &Result{
		Ops:     ops,
		Elapsed: elapsed,
		Stalls:  e.stalls.Load(),
		PerOp:   make(map[string]OpStats, numOpKinds),
	}
	for _, k := range OpKinds() {
		s := e.hists[k].Snapshot()
		res.Failures += e.fails[k].Load()
		if s.Count == 0 && e.fails[k].Load() == 0 {
			continue
		}
		res.PerOp[k.String()] = OpStats{
			Count:    s.Count,
			Failures: e.fails[k].Load(),
			Mean:     s.Mean,
			P50:      s.P50,
			P99:      s.P99,
			Max:      s.Max,
		}
	}
	if fe := e.firstErr.Load(); fe != nil {
		res.FirstErr = fmt.Errorf("op %d (%s ue%07d): %w", fe.op.Seq, fe.op.Kind, fe.op.UE, fe.err)
	}
	return res
}

// lane keys an op to its execution lane; same UE, same lane, so per-UE
// schedule order is preserved without per-op coordination.
func (e *Engine) lane(op Op) int { return op.UE % e.cfg.Workers }

// runClosed partitions the schedule into per-lane slices and drains them
// concurrently. Each lane pipelines up to MaxInFlight/Workers operations:
// ops for distinct UEs overlap their southbound round trips, while ops
// for the same UE chain on the previous one's completion so per-UE
// schedule order — the property the replayable state digest depends on —
// is preserved exactly as in the serial engine.
func (e *Engine) runClosed(ops []Op) {
	lanes := make([][]Op, e.cfg.Workers)
	for _, op := range ops {
		l := e.lane(op)
		lanes[l] = append(lanes[l], op)
	}
	window := e.cfg.MaxInFlight / e.cfg.Workers
	if window < 1 {
		window = 1
	}
	var wg sync.WaitGroup
	for _, lane := range lanes {
		if len(lane) == 0 {
			continue
		}
		wg.Add(1)
		go func(lane []Op) {
			defer wg.Done()
			e.drainLane(lane, window)
		}(lane)
	}
	wg.Wait()
}

// drainLane executes one lane's ops with the given pipeline depth.
func (e *Engine) drainLane(lane []Op, window int) {
	if window == 1 {
		for _, op := range lane {
			e.execTimed(op)
		}
		return
	}
	sem := make(chan struct{}, window)
	// waits chains same-UE ops: each op waits on the completion of the
	// UE's previously issued op before executing. A blocked op holds its
	// window slot, but the head of every wait chain is always running, so
	// the lane cannot deadlock.
	waits := make(map[int]chan struct{}, window)
	for _, op := range lane {
		prev := waits[op.UE]
		done := make(chan struct{})
		waits[op.UE] = done
		sem <- struct{}{}
		go func(op Op, prev, done chan struct{}) {
			defer func() {
				<-sem
				close(done)
			}()
			if prev != nil {
				<-prev
			}
			e.execTimed(op)
		}(op, prev, done)
	}
	for i := 0; i < window; i++ {
		sem <- struct{}{}
	}
}

// runOpen admits the schedule in order: each op waits for its paced
// arrival time (if RatePerSec > 0) and an in-flight token, then is handed
// to its lane. Lane channels are sized to the window, so the token pool is
// the only admission bound.
func (e *Engine) runOpen(ops []Op) {
	e.tokens = make(chan struct{}, e.cfg.MaxInFlight)
	chans := make([]chan Op, e.cfg.Workers)
	var wg sync.WaitGroup
	for i := range chans {
		chans[i] = make(chan Op, e.cfg.MaxInFlight)
		wg.Add(1)
		go func(ch chan Op) {
			defer wg.Done()
			for op := range ch {
				e.execTimed(op)
				<-e.tokens
			}
		}(chans[i])
	}
	start := wallClock()
	for _, op := range ops {
		if e.cfg.RatePerSec > 0 {
			due := start.Add(time.Duration(float64(op.Seq) / e.cfg.RatePerSec * float64(time.Second)))
			if d := due.Sub(wallClock()); d > 0 {
				time.Sleep(d)
			}
		}
		select {
		case e.tokens <- struct{}{}:
		default:
			// Window full: the network is slower than the offered load.
			e.stalls.Add(1)
			e.tokens <- struct{}{}
		}
		chans[e.lane(op)] <- op
	}
	for _, ch := range chans {
		close(ch)
	}
	wg.Wait()
}

// execTimed runs one op and records its latency and outcome.
func (e *Engine) execTimed(op Op) {
	t0 := wallClock()
	var err error
	if e.wrap != nil {
		err = e.wrap(op, func() error { return e.exec(op) })
	} else {
		err = e.exec(op)
	}
	e.hists[op.Kind].Observe(wallClock().Sub(t0))
	if err != nil {
		e.fails[op.Kind].Add(1)
		e.firstErr.CompareAndSwap(nil, &opError{op: op, err: err})
	}
}

// exec dispatches one op to the UE's serving leaf.
func (e *Engine) exec(op Op) error {
	r := &e.cl.Regions[op.Region]
	ue := UEName(op.UE)
	switch op.Kind {
	case OpAttach, OpBearerSetup:
		_, err := r.Leaf.HandleBearerRequest(core.BearerRequest{
			UE: ue, BS: r.BSes[op.BS],
			Prefix: e.cl.Regions[op.Prefix].Prefix, QoS: 1,
		})
		return err
	case OpBearerTeardown:
		return r.Leaf.DeactivateBearer(ue)
	case OpHandoverIntra:
		return r.Leaf.Handover(ue, r.Group, r.BSes[op.BS])
	case OpHandoverInter:
		d := &e.cl.Regions[op.Dst]
		return r.Leaf.Handover(ue, d.Group, d.BSes[op.DstBS])
	case OpDetach:
		return r.Leaf.Detach(ue)
	default:
		return fmt.Errorf("workload: unknown op kind %d", op.Kind)
	}
}
