package workload

import (
	"testing"

	"repro/internal/chaos"
)

func failoverConfig() Config {
	return Config{
		Seed:    42,
		UEs:     300,
		Events:  3000,
		Regions: 2,
		Mode:    ModeClosed,
	}
}

// TestFailoverDigestMatchesPlainRun is the exactly-once property: a run
// that loses its master mid-flight — with acked-but-uncommitted commits,
// abandoned in-flight ops, and a blackout — must land on the exact same
// final state as an undisturbed run at the same seed.
func TestFailoverDigestMatchesPlainRun(t *testing.T) {
	cfg := failoverConfig()
	eng, cl, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	eng.Run()
	want := StateDigest(cl)

	spec := chaos.FailoverSchedule{KillAt: 1500, LostCommits: 3, Abandon: 4, SnapshotEvery: 64}
	_, fcl, stats, err := RunFailoverPass(cfg, spec)
	if err != nil {
		t.Fatalf("failover pass: %v", err)
	}
	if got := StateDigest(fcl); got != want {
		t.Fatalf("state digest diverged after failover: plain %s, failover %s", want, got)
	}
	if stats.EventsLost != 0 {
		t.Fatalf("lost %d acked events across failover", stats.EventsLost)
	}
	if !stats.UETableConverged || !stats.ReplicaConverged {
		t.Fatalf("convergence failed: ue_table=%t replica=%t", stats.UETableConverged, stats.ReplicaConverged)
	}
	if stats.RedoneEntries < stats.AbandonedInFlight {
		t.Fatalf("promotion redid %d entries, expected at least the %d abandoned ops",
			stats.RedoneEntries, stats.AbandonedInFlight)
	}
	if stats.DuplicatesDetected > stats.LostCommits {
		t.Fatalf("detected %d duplicates, more than the %d lost commits", stats.DuplicatesDetected, stats.LostCommits)
	}
	if stats.PromotionLatencyNs <= 0 || stats.RecoveryWallNs <= 0 {
		t.Fatalf("unmeasured recovery: promotion=%dns recovery=%dns", stats.PromotionLatencyNs, stats.RecoveryWallNs)
	}
}

// TestFailoverSnapshotBoundsReplay compares the same crash schedule with
// incremental snapshots against full-history replay: the snapshot pass
// must promote from a checkpoint, replay strictly fewer entries, and
// still reach the identical final state.
func TestFailoverSnapshotBoundsReplay(t *testing.T) {
	cfg := failoverConfig()
	spec := chaos.FailoverSchedule{KillAt: 2000, LostCommits: 2, Abandon: 3, SnapshotEvery: 64}

	_, scl, snap, err := RunFailoverPass(cfg, spec)
	if err != nil {
		t.Fatalf("snapshot pass: %v", err)
	}
	spec.SnapshotEvery = 0
	_, fcl, full, err := RunFailoverPass(cfg, spec)
	if err != nil {
		t.Fatalf("full-replay pass: %v", err)
	}

	if sd, fd := StateDigest(scl), StateDigest(fcl); sd != fd {
		t.Fatalf("digest mismatch between passes: snapshot %s, full %s", sd, fd)
	}
	if !snap.FromSnapshot {
		t.Fatal("snapshot pass promoted without a checkpoint")
	}
	if full.FromSnapshot {
		t.Fatal("full-replay pass unexpectedly found a checkpoint")
	}
	if snap.ReplayedEntries >= full.ReplayedEntries {
		t.Fatalf("snapshot replay not cheaper: %d entries vs %d from genesis",
			snap.ReplayedEntries, full.ReplayedEntries)
	}
	if snap.LogLenFinal >= full.LogLenFinal {
		t.Fatalf("truncation did not shrink the retained log: %d vs %d entries",
			snap.LogLenFinal, full.LogLenFinal)
	}
	sec := BuildFailoverSection("x", snap, full)
	if sec.ReplayReduction <= 1 {
		t.Fatalf("replay reduction %.2f, want > 1", sec.ReplayReduction)
	}
}

// TestFailoverScheduleNormalization pins the clamping rules that keep a
// schedule from deadlocking the driver.
func TestFailoverScheduleNormalization(t *testing.T) {
	s, err := chaos.FailoverSchedule{KillAt: 100, LostCommits: 5, Abandon: 50}.Normalized(1000, 8)
	if err != nil {
		t.Fatal(err)
	}
	if s.Abandon != 8 {
		t.Fatalf("abandon window not clamped to workers: %d", s.Abandon)
	}
	if _, err := (chaos.FailoverSchedule{KillAt: 990, LostCommits: 0, Abandon: 20}).Normalized(1000, 64); err == nil {
		t.Fatal("schedule overflowing the run must be rejected")
	}
	if _, err := (chaos.FailoverSchedule{KillAt: 0, Abandon: 1}).Normalized(1000, 8); err == nil {
		t.Fatal("non-positive KillAt must be rejected")
	}
}
