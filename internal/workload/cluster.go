package workload

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dataplane"
	"repro/internal/interdomain"
	"repro/internal/netem"
	"repro/internal/reca"
	"repro/internal/southbound"
)

// ControlPlane describes how a cluster realizes its control channels:
// direct in-process calls (the zero value), or the real southbound
// protocol over pipes shaped by a delay and an optional netem impairment
// profile. It is JSON-embeddable so region slices of a distributed run
// reproduce the launcher's exact channel conditions.
type ControlPlane struct {
	// Delay is the baseline one-way control-channel propagation delay
	// (the historical controlDelay); the impairment profile's own delay
	// and jitter layer on top of it.
	Delay time.Duration `json:"delay_ns,omitempty"`
	// Impair, when non-nil, applies the netem profile — jitter, loss,
	// reordering, rate caps, partition windows — to every leaf↔switch
	// channel. A non-nil profile forces protocol attachment even with a
	// zero Delay.
	Impair *netem.Profile `json:"impair,omitempty"`
	// Seed derives the per-link RNG streams; links are named by device ID,
	// so the same (seed, profile) reproduces the same drop/jitter sequence
	// per link regardless of build order.
	Seed int64 `json:"seed,omitempty"`
	// FixedTimeout disables the RTT-adaptive fence deadlines on attached
	// ConnDevices — the comparison baseline of the impairment matrix.
	FixedTimeout bool `json:"fixed_timeout,omitempty"`
	// FenceTimeout overrides the ConnDevice request timeout (0 keeps the
	// DialDevice default).
	FenceTimeout time.Duration `json:"fence_timeout_ns,omitempty"`
}

// protocol reports whether switches attach over the southbound protocol.
func (cp ControlPlane) protocol() bool { return cp.Delay > 0 || cp.Impair != nil }

// effective is the full per-link impairment profile: the netem profile
// with the baseline delay folded in.
func (cp ControlPlane) effective() netem.Profile {
	var p netem.Profile
	if cp.Impair != nil {
		p = *cp.Impair
	}
	p.Delay += cp.Delay
	return p
}

// controlLink records one impaired southbound channel for post-build
// reconfiguration (impairment activation, scheduled partitions) and
// stats aggregation.
type controlLink struct {
	Region int
	Dev    dataplane.DeviceID
	Conn   *southbound.ImpairedConn
}

// Region is one leaf region of a generated cluster.
type Region struct {
	// Leaf is the region's controller. In a region slice
	// (BuildRegionSlice) it is nil for regions owned by other processes;
	// the name fields below are populated for every region, because the
	// schedule references remote regions by name (inter-region handover
	// targets, remote prefixes).
	Leaf *core.Controller
	// Group is the region's border BS group; border groups are exposed to
	// the parent under their own ID, so Group doubles as the G-BS ID
	// inter-region handovers target.
	Group dataplane.DeviceID
	// BSes are the base stations camped on Group.
	BSes []dataplane.DeviceID
	// Prefix is the region's egress prefix.
	Prefix interdomain.PrefixID
	// Attach is the radio attachment port carrying Group.
	Attach dataplane.PortRef
}

// Cluster is an N-region deployment the engine drives: diamond regions
// (access — two middles — egress) joined in a ring, one border group and
// one egress prefix per region, under a two-level hierarchy.
type Cluster struct {
	Net  *dataplane.Network
	Hier *core.Hierarchy
	// Regions spans the full cluster. In a region slice only
	// Regions[Lo:Hi] carry a Leaf (and Hier is nil — the root lives in
	// the launcher process, attached over the northbound wire).
	Regions []Region
	// Lo and Hi bound the regions this process owns: [0, len(Regions))
	// for a full in-process cluster.
	Lo, Hi int

	// devices and links record every protocol device and impaired pipe a
	// protocol attach created, and agents tracks the switch-agent serve
	// goroutines, so Close can tear the whole control plane down and
	// prove every goroutine exited.
	devices   []*core.ConnDevice
	links     []controlLink
	cp        ControlPlane
	agents    sync.WaitGroup
	closeOnce sync.Once
}

// regionNames fills the deterministic name fields for region k.
func regionNames(k, bsPerRegion int) Region {
	bses := make([]dataplane.DeviceID, bsPerRegion)
	for j := range bses {
		bses[j] = dataplane.DeviceID(fmt.Sprintf("b%d-%d", k, j))
	}
	return Region{
		Group:  dataplane.DeviceID(fmt.Sprintf("g%d", k)),
		BSes:   bses,
		Prefix: interdomain.PrefixID(fmt.Sprintf("pfx%d", k)),
	}
}

// addRegionDataplane builds region k's diamond (access — two middles —
// egress), radio port, and egress point in net, returning the region's
// populated name fields, its leaf spec, and its egress point. Port
// numbering per switch is independent of which other regions exist in
// net, which is what lets a region slice reproduce the exact features the
// full cluster's switches expose.
func addRegionDataplane(net *dataplane.Network, k, bsPerRegion int) (Region, core.LeafSpec, *dataplane.EgressPoint, error) {
	a := dataplane.DeviceID(fmt.Sprintf("A%d", k))
	ma := dataplane.DeviceID(fmt.Sprintf("M%da", k))
	mb := dataplane.DeviceID(fmt.Sprintf("M%db", k))
	e := dataplane.DeviceID(fmt.Sprintf("E%d", k))
	for _, id := range []dataplane.DeviceID{a, ma, mb, e} {
		net.AddSwitch(id)
	}
	for _, c := range []struct {
		x, y dataplane.DeviceID
		lat  time.Duration
	}{{a, ma, 2 * time.Millisecond}, {a, mb, 3 * time.Millisecond},
		{ma, e, 2 * time.Millisecond}, {mb, e, 3 * time.Millisecond}} {
		if _, err := net.Connect(c.x, c.y, c.lat, 10_000); err != nil {
			return Region{}, core.LeafSpec{}, nil, err
		}
	}
	reg := regionNames(k, bsPerRegion)
	rp, err := net.AddRadioPort(a, reg.Group)
	if err != nil {
		return Region{}, core.LeafSpec{}, nil, err
	}
	ep, err := net.AddEgress(fmt.Sprintf("X%d", k), e, fmt.Sprintf("isp%d", k))
	if err != nil {
		return Region{}, core.LeafSpec{}, nil, err
	}
	reg.Attach = dataplane.PortRef{Dev: a, Port: rp.ID}
	bsGroup := make(map[dataplane.DeviceID]dataplane.DeviceID, bsPerRegion)
	for _, bs := range reg.BSes {
		bsGroup[bs] = reg.Group
	}
	spec := core.LeafSpec{
		ID:       fmt.Sprintf("L%d", k),
		Switches: []dataplane.DeviceID{a, ma, mb, e},
		Radios:   []reca.RadioAttachment{{ID: reg.Group, Attach: reg.Attach, Border: true}},
		BSGroup:  bsGroup,
	}
	return reg, spec, ep, nil
}

// attachProtocol replaces region k's in-process switch adapters with
// protocol devices: a real agent per switch served over an in-memory
// pipe whose device→controller leg is shaped by an ImpairedConn — so
// the workload exercises the binary codec, the ConnDevice completion
// pipeline, and genuine WAN round-trip overlap rather than a per-call
// sleep. Attachment runs on the clean delay-only profile; the builders
// switch to the full impairment after construction (ActivateImpairment),
// so handshakes and discovery never race loss or partition windows.
func (cl *Cluster) attachProtocol(leaf *core.Controller, k int) error {
	for _, d := range leaf.Devices() {
		sw := cl.Net.Switch(d.ID())
		if sw == nil {
			continue // G-switch or other virtual device
		}
		agent := southbound.NewSwitchAgent(cl.Net, sw)
		ctrlEnd, devEnd := southbound.Pipe(256)
		rng := netem.LinkRNG(cl.cp.Seed, string(d.ID()))
		ic := southbound.NewImpairedConn(devEnd, netem.Profile{Delay: cl.cp.effective().Delay}, rng)
		cl.links = append(cl.links, controlLink{Region: k, Dev: d.ID(), Conn: ic})
		cl.agents.Add(1)
		go func() {
			defer cl.agents.Done()
			_ = agent.Serve(ic) //softmow:allow errdiscard the agent exits when its pipe dies; teardown is the only cause and the error carries no extra signal
		}()
		cd, err := core.DialDevice(ctrlEnd, leaf.ID)
		if err != nil {
			return fmt.Errorf("workload: dial %s: %w", d.ID(), err)
		}
		if cl.cp.FixedTimeout {
			cd.AdaptiveTimeout = false
		}
		if cl.cp.FenceTimeout > 0 {
			cd.RequestTimeout = cl.cp.FenceTimeout
		}
		cl.devices = append(cl.devices, cd)
		leaf.AttachDevice(cd)
	}
	return nil
}

// ActivateImpairment switches every southbound link from the clean
// bootstrap profile to the cluster's full impairment profile. Builders
// call it once construction completes; callers may call it again after a
// SetProfile experiment to restore the configured conditions.
func (cl *Cluster) ActivateImpairment() {
	full := cl.cp.effective()
	for _, l := range cl.links {
		l.Conn.Link().SetProfile(full)
	}
}

// SetRegionDown hard-partitions (or heals) region k's southbound control
// channels — the scheduled-partition scenario's lever. It composes with
// the active profile: healing restores the impaired (not clean) channel.
func (cl *Cluster) SetRegionDown(k int, down bool) {
	for _, l := range cl.links {
		if l.Region == k {
			l.Conn.Link().SetDown(down)
		}
	}
}

// ImpairmentStats aggregates netem delivery and drop counts across every
// southbound link of the cluster.
func (cl *Cluster) ImpairmentStats() netem.Stats {
	var s netem.Stats
	for _, l := range cl.links {
		s.Add(l.Conn.Link().Stats())
	}
	return s
}

// Close tears down every protocol device and impaired pipe a protocol
// attach created and waits until all switch-agent and device goroutines
// have exited. It is a no-op for clusters built with direct in-process
// devices and safe to call more than once.
func (cl *Cluster) Close() {
	cl.closeOnce.Do(func() {
		for _, cd := range cl.devices {
			_ = cd.Close() //softmow:allow errdiscard teardown path; the pipe cannot fail to close and pending work is failed with ErrClosed by design
		}
		for _, l := range cl.links {
			_ = l.Conn.Close() //softmow:allow errdiscard teardown path; closing the impaired leg is idempotent and its error carries no extra signal
		}
		cl.agents.Wait()
		for _, cd := range cl.devices {
			cd.WaitStopped()
		}
	})
}

// addInterdomain wires region r's prefix to exit via its own egress.
// Propagation to the parent is the caller's job: the in-process build
// propagates immediately, a region slice waits until the launcher
// sequences the pushes in region order over the wire (the root appends
// route options in push order, and the tie-break depends on it).
func addInterdomain(r *Region, ep *dataplane.EgressPoint) {
	r.Leaf.AddInterdomainRoutes([]interdomain.Route{{
		Prefix: r.Prefix, Egress: ep.ID, EgressSwitch: ep.Switch,
		Metrics: interdomain.Metrics{Hops: 2, RTT: 8 * time.Millisecond},
	}}, dataplane.PortRef{Dev: ep.Switch, Port: ep.Port})
}

// BuildCluster constructs the R-region ring with bsPerRegion base
// stations per region and the given UE-store shard count on every
// controller (0 keeps core.DefaultUEShards; 1 is the coarse single-mutex
// baseline). A control plane requesting protocol attachment (nonzero
// Delay or a netem profile) re-attaches every leaf's physical switches
// through the real southbound protocol over impaired pipes; the full
// impairment activates after construction. Construction is deterministic
// — topology consumes no RNG, and link impairment streams derive from
// cp.Seed alone.
func BuildCluster(regions, bsPerRegion, shards int, cp ControlPlane) (*Cluster, error) {
	if regions < 2 {
		return nil, fmt.Errorf("workload: need at least 2 regions, got %d", regions)
	}
	if bsPerRegion < 1 {
		return nil, fmt.Errorf("workload: need at least 1 BS per region, got %d", bsPerRegion)
	}
	net := dataplane.NewNetwork()
	cl := &Cluster{Net: net, Lo: 0, Hi: regions, cp: cp}
	specs := make([]core.LeafSpec, 0, regions)
	egresses := make([]*dataplane.EgressPoint, 0, regions)
	for k := 0; k < regions; k++ {
		reg, spec, ep, err := addRegionDataplane(net, k, bsPerRegion)
		if err != nil {
			return nil, err
		}
		cl.Regions = append(cl.Regions, reg)
		specs = append(specs, spec)
		egresses = append(egresses, ep)
	}
	// Ring of cross-region links: E(k) — A(k+1 mod R).
	for k := 0; k < regions; k++ {
		e := dataplane.DeviceID(fmt.Sprintf("E%d", k))
		a := dataplane.DeviceID(fmt.Sprintf("A%d", (k+1)%regions))
		if _, err := net.Connect(e, a, 4*time.Millisecond, 10_000); err != nil {
			return nil, err
		}
	}

	hier, err := core.NewTwoLevel(net, "root", specs)
	if err != nil {
		return nil, err
	}
	cl.Hier = hier
	if shards != 0 {
		for _, c := range hier.All {
			c.SetUEShardCount(shards)
		}
	}
	if cp.protocol() {
		for k, leaf := range hier.Leaves {
			if err := cl.attachProtocol(leaf, k); err != nil {
				return nil, err
			}
		}
	}
	// Interdomain: each region's prefix exits via its own egress,
	// propagated upward in region order.
	for k := range cl.Regions {
		r := &cl.Regions[k]
		r.Leaf = hier.Leaves[k]
		addInterdomain(r, egresses[k])
		r.Leaf.PropagateInterdomain()
	}
	cl.ActivateImpairment()
	return cl, nil
}

// BuildRegionSlice constructs the [lo, hi) slice of the R-region ring for
// one region process of a distributed cluster: only the owned regions'
// switches exist in this process's data plane, with the ring links at the
// slice boundaries replaced by stub ports. A stub port carries the same
// port number and reports the same feature bits (up, internal, no radio)
// as its connected counterpart in the full cluster, so the leaf's
// discovery, abstraction, and G-switch exposure are byte-identical to the
// in-process build — the property the replay-digest comparison relies on.
// The cross-boundary connectivity lives only in the launcher's root NIB,
// which stitches G-switch-level ring links from the exposed ports.
//
// Leaves are bootstrapped but not attached to any parent; the caller
// connects each to the launcher over the northbound wire and sequences
// interdomain propagation in region order.
func BuildRegionSlice(regions, bsPerRegion, shards int, cp ControlPlane, lo, hi int) (*Cluster, error) {
	if regions < 2 {
		return nil, fmt.Errorf("workload: need at least 2 regions, got %d", regions)
	}
	if bsPerRegion < 1 {
		return nil, fmt.Errorf("workload: need at least 1 BS per region, got %d", bsPerRegion)
	}
	if lo < 0 || hi <= lo || hi > regions {
		return nil, fmt.Errorf("workload: bad region slice [%d, %d) of %d", lo, hi, regions)
	}
	net := dataplane.NewNetwork()
	cl := &Cluster{Net: net, Regions: make([]Region, regions), Lo: lo, Hi: hi, cp: cp}
	for k := range cl.Regions {
		cl.Regions[k] = regionNames(k, bsPerRegion)
	}
	specs := make(map[int]core.LeafSpec, hi-lo)
	egresses := make(map[int]*dataplane.EgressPoint, hi-lo)
	for k := lo; k < hi; k++ {
		reg, spec, ep, err := addRegionDataplane(net, k, bsPerRegion)
		if err != nil {
			return nil, err
		}
		cl.Regions[k] = reg
		specs[k] = spec
		egresses[k] = ep
	}
	// Ring phase, mirroring the full build's k = lo..hi-1 pass: a link is
	// real when both endpoints are owned, a stub port otherwise. The stub
	// occupies the same NextFreePort slot the Connect would have.
	full := hi-lo == regions
	for k := lo; k < hi; k++ {
		e := dataplane.DeviceID(fmt.Sprintf("E%d", k))
		next := (k + 1) % regions
		a := dataplane.DeviceID(fmt.Sprintf("A%d", next))
		if next >= lo && next < hi && (k+1 < hi || full) {
			if _, err := net.Connect(e, a, 4*time.Millisecond, 10_000); err != nil {
				return nil, err
			}
			continue
		}
		sw := net.Switch(e)
		sw.AddPort(sw.NextFreePort())
	}
	if !full {
		// The ring-in port of the first owned region: its neighbor's
		// Connect would have added it in the full build.
		sw := net.Switch(dataplane.DeviceID(fmt.Sprintf("A%d", lo)))
		sw.AddPort(sw.NextFreePort())
	}

	for k := lo; k < hi; k++ {
		leaf := core.NewController(fmt.Sprintf("L%d", k), 1, k)
		if err := core.BootstrapLeaf(net, leaf, specs[k]); err != nil {
			return nil, err
		}
		if shards != 0 {
			leaf.SetUEShardCount(shards)
		}
		if cp.protocol() {
			if err := cl.attachProtocol(leaf, k); err != nil {
				return nil, err
			}
		}
		cl.Regions[k].Leaf = leaf
		addInterdomain(&cl.Regions[k], egresses[k])
	}
	cl.ActivateImpairment()
	return cl, nil
}

// OwnedLeaves lists the cluster's leaf controllers in region order — for
// a slice, only the owned ones.
func (cl *Cluster) OwnedLeaves() []*core.Controller {
	out := make([]*core.Controller, 0, cl.Hi-cl.Lo)
	for k := cl.Lo; k < cl.Hi; k++ {
		out = append(out, cl.Regions[k].Leaf)
	}
	return out
}
