package workload

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dataplane"
	"repro/internal/interdomain"
	"repro/internal/reca"
	"repro/internal/southbound"
)

// Region is one leaf region of a generated cluster.
type Region struct {
	// Leaf is the region's controller. In a region slice
	// (BuildRegionSlice) it is nil for regions owned by other processes;
	// the name fields below are populated for every region, because the
	// schedule references remote regions by name (inter-region handover
	// targets, remote prefixes).
	Leaf *core.Controller
	// Group is the region's border BS group; border groups are exposed to
	// the parent under their own ID, so Group doubles as the G-BS ID
	// inter-region handovers target.
	Group dataplane.DeviceID
	// BSes are the base stations camped on Group.
	BSes []dataplane.DeviceID
	// Prefix is the region's egress prefix.
	Prefix interdomain.PrefixID
	// Attach is the radio attachment port carrying Group.
	Attach dataplane.PortRef
}

// Cluster is an N-region deployment the engine drives: diamond regions
// (access — two middles — egress) joined in a ring, one border group and
// one egress prefix per region, under a two-level hierarchy.
type Cluster struct {
	Net  *dataplane.Network
	Hier *core.Hierarchy
	// Regions spans the full cluster. In a region slice only
	// Regions[Lo:Hi] carry a Leaf (and Hier is nil — the root lives in
	// the launcher process, attached over the northbound wire).
	Regions []Region
	// Lo and Hi bound the regions this process owns: [0, len(Regions))
	// for a full in-process cluster.
	Lo, Hi int

	// devices and conns record every protocol device and delayed pipe a
	// delayed attach created, and agents tracks the switch-agent serve
	// goroutines, so Close can tear the whole control plane down and
	// prove every goroutine exited.
	devices   []*core.ConnDevice
	conns     []*southbound.DelayedConn
	agents    sync.WaitGroup
	closeOnce sync.Once
}

// regionNames fills the deterministic name fields for region k.
func regionNames(k, bsPerRegion int) Region {
	bses := make([]dataplane.DeviceID, bsPerRegion)
	for j := range bses {
		bses[j] = dataplane.DeviceID(fmt.Sprintf("b%d-%d", k, j))
	}
	return Region{
		Group:  dataplane.DeviceID(fmt.Sprintf("g%d", k)),
		BSes:   bses,
		Prefix: interdomain.PrefixID(fmt.Sprintf("pfx%d", k)),
	}
}

// addRegionDataplane builds region k's diamond (access — two middles —
// egress), radio port, and egress point in net, returning the region's
// populated name fields, its leaf spec, and its egress point. Port
// numbering per switch is independent of which other regions exist in
// net, which is what lets a region slice reproduce the exact features the
// full cluster's switches expose.
func addRegionDataplane(net *dataplane.Network, k, bsPerRegion int) (Region, core.LeafSpec, *dataplane.EgressPoint, error) {
	a := dataplane.DeviceID(fmt.Sprintf("A%d", k))
	ma := dataplane.DeviceID(fmt.Sprintf("M%da", k))
	mb := dataplane.DeviceID(fmt.Sprintf("M%db", k))
	e := dataplane.DeviceID(fmt.Sprintf("E%d", k))
	for _, id := range []dataplane.DeviceID{a, ma, mb, e} {
		net.AddSwitch(id)
	}
	for _, c := range []struct {
		x, y dataplane.DeviceID
		lat  time.Duration
	}{{a, ma, 2 * time.Millisecond}, {a, mb, 3 * time.Millisecond},
		{ma, e, 2 * time.Millisecond}, {mb, e, 3 * time.Millisecond}} {
		if _, err := net.Connect(c.x, c.y, c.lat, 10_000); err != nil {
			return Region{}, core.LeafSpec{}, nil, err
		}
	}
	reg := regionNames(k, bsPerRegion)
	rp, err := net.AddRadioPort(a, reg.Group)
	if err != nil {
		return Region{}, core.LeafSpec{}, nil, err
	}
	ep, err := net.AddEgress(fmt.Sprintf("X%d", k), e, fmt.Sprintf("isp%d", k))
	if err != nil {
		return Region{}, core.LeafSpec{}, nil, err
	}
	reg.Attach = dataplane.PortRef{Dev: a, Port: rp.ID}
	bsGroup := make(map[dataplane.DeviceID]dataplane.DeviceID, bsPerRegion)
	for _, bs := range reg.BSes {
		bsGroup[bs] = reg.Group
	}
	spec := core.LeafSpec{
		ID:       fmt.Sprintf("L%d", k),
		Switches: []dataplane.DeviceID{a, ma, mb, e},
		Radios:   []reca.RadioAttachment{{ID: reg.Group, Attach: reg.Attach, Border: true}},
		BSGroup:  bsGroup,
	}
	return reg, spec, ep, nil
}

// attachDelayed replaces a leaf's in-process switch adapters with
// protocol devices: a real agent per switch served over an in-memory
// pipe whose device→controller leg is held back by a DelayedConn — so
// the workload exercises the binary codec, the ConnDevice completion
// pipeline, and genuine WAN round-trip overlap rather than a per-call
// sleep.
func (cl *Cluster) attachDelayed(leaf *core.Controller, controlDelay time.Duration) error {
	for _, d := range leaf.Devices() {
		sw := cl.Net.Switch(d.ID())
		if sw == nil {
			continue // G-switch or other virtual device
		}
		agent := southbound.NewSwitchAgent(cl.Net, sw)
		ctrlEnd, devEnd := southbound.Pipe(256)
		dc := southbound.NewDelayedConn(devEnd, controlDelay)
		cl.conns = append(cl.conns, dc)
		cl.agents.Add(1)
		go func() {
			defer cl.agents.Done()
			_ = agent.Serve(dc) //softmow:allow errdiscard the agent exits when its pipe dies; teardown is the only cause and the error carries no extra signal
		}()
		cd, err := core.DialDevice(ctrlEnd, leaf.ID)
		if err != nil {
			return fmt.Errorf("workload: dial %s: %w", d.ID(), err)
		}
		cl.devices = append(cl.devices, cd)
		leaf.AttachDevice(cd)
	}
	return nil
}

// Close tears down every protocol device and delayed pipe a delayed
// attach created and waits until all switch-agent and device goroutines
// have exited. It is a no-op for clusters built without a control delay
// and safe to call more than once.
func (cl *Cluster) Close() {
	cl.closeOnce.Do(func() {
		for _, cd := range cl.devices {
			_ = cd.Close() //softmow:allow errdiscard teardown path; the pipe cannot fail to close and pending work is failed with ErrClosed by design
		}
		for _, dc := range cl.conns {
			_ = dc.Close() //softmow:allow errdiscard teardown path; closing the delayed leg is idempotent and its error carries no extra signal
		}
		cl.agents.Wait()
		for _, cd := range cl.devices {
			cd.WaitStopped()
		}
	})
}

// addInterdomain wires region r's prefix to exit via its own egress.
// Propagation to the parent is the caller's job: the in-process build
// propagates immediately, a region slice waits until the launcher
// sequences the pushes in region order over the wire (the root appends
// route options in push order, and the tie-break depends on it).
func addInterdomain(r *Region, ep *dataplane.EgressPoint) {
	r.Leaf.AddInterdomainRoutes([]interdomain.Route{{
		Prefix: r.Prefix, Egress: ep.ID, EgressSwitch: ep.Switch,
		Metrics: interdomain.Metrics{Hops: 2, RTT: 8 * time.Millisecond},
	}}, dataplane.PortRef{Dev: ep.Switch, Port: ep.Port})
}

// BuildCluster constructs the R-region ring with bsPerRegion base
// stations per region and the given UE-store shard count on every
// controller (0 keeps core.DefaultUEShards; 1 is the coarse single-mutex
// baseline). controlDelay > 0 re-attaches every leaf's physical switches
// through the real southbound protocol over delayed pipes. Construction
// is deterministic — no RNG is consumed.
func BuildCluster(regions, bsPerRegion, shards int, controlDelay time.Duration) (*Cluster, error) {
	if regions < 2 {
		return nil, fmt.Errorf("workload: need at least 2 regions, got %d", regions)
	}
	if bsPerRegion < 1 {
		return nil, fmt.Errorf("workload: need at least 1 BS per region, got %d", bsPerRegion)
	}
	net := dataplane.NewNetwork()
	cl := &Cluster{Net: net, Lo: 0, Hi: regions}
	specs := make([]core.LeafSpec, 0, regions)
	egresses := make([]*dataplane.EgressPoint, 0, regions)
	for k := 0; k < regions; k++ {
		reg, spec, ep, err := addRegionDataplane(net, k, bsPerRegion)
		if err != nil {
			return nil, err
		}
		cl.Regions = append(cl.Regions, reg)
		specs = append(specs, spec)
		egresses = append(egresses, ep)
	}
	// Ring of cross-region links: E(k) — A(k+1 mod R).
	for k := 0; k < regions; k++ {
		e := dataplane.DeviceID(fmt.Sprintf("E%d", k))
		a := dataplane.DeviceID(fmt.Sprintf("A%d", (k+1)%regions))
		if _, err := net.Connect(e, a, 4*time.Millisecond, 10_000); err != nil {
			return nil, err
		}
	}

	hier, err := core.NewTwoLevel(net, "root", specs)
	if err != nil {
		return nil, err
	}
	cl.Hier = hier
	if shards != 0 {
		for _, c := range hier.All {
			c.SetUEShardCount(shards)
		}
	}
	if controlDelay > 0 {
		for _, leaf := range hier.Leaves {
			if err := cl.attachDelayed(leaf, controlDelay); err != nil {
				return nil, err
			}
		}
	}
	// Interdomain: each region's prefix exits via its own egress,
	// propagated upward in region order.
	for k := range cl.Regions {
		r := &cl.Regions[k]
		r.Leaf = hier.Leaves[k]
		addInterdomain(r, egresses[k])
		r.Leaf.PropagateInterdomain()
	}
	return cl, nil
}

// BuildRegionSlice constructs the [lo, hi) slice of the R-region ring for
// one region process of a distributed cluster: only the owned regions'
// switches exist in this process's data plane, with the ring links at the
// slice boundaries replaced by stub ports. A stub port carries the same
// port number and reports the same feature bits (up, internal, no radio)
// as its connected counterpart in the full cluster, so the leaf's
// discovery, abstraction, and G-switch exposure are byte-identical to the
// in-process build — the property the replay-digest comparison relies on.
// The cross-boundary connectivity lives only in the launcher's root NIB,
// which stitches G-switch-level ring links from the exposed ports.
//
// Leaves are bootstrapped but not attached to any parent; the caller
// connects each to the launcher over the northbound wire and sequences
// interdomain propagation in region order.
func BuildRegionSlice(regions, bsPerRegion, shards int, controlDelay time.Duration, lo, hi int) (*Cluster, error) {
	if regions < 2 {
		return nil, fmt.Errorf("workload: need at least 2 regions, got %d", regions)
	}
	if bsPerRegion < 1 {
		return nil, fmt.Errorf("workload: need at least 1 BS per region, got %d", bsPerRegion)
	}
	if lo < 0 || hi <= lo || hi > regions {
		return nil, fmt.Errorf("workload: bad region slice [%d, %d) of %d", lo, hi, regions)
	}
	net := dataplane.NewNetwork()
	cl := &Cluster{Net: net, Regions: make([]Region, regions), Lo: lo, Hi: hi}
	for k := range cl.Regions {
		cl.Regions[k] = regionNames(k, bsPerRegion)
	}
	specs := make(map[int]core.LeafSpec, hi-lo)
	egresses := make(map[int]*dataplane.EgressPoint, hi-lo)
	for k := lo; k < hi; k++ {
		reg, spec, ep, err := addRegionDataplane(net, k, bsPerRegion)
		if err != nil {
			return nil, err
		}
		cl.Regions[k] = reg
		specs[k] = spec
		egresses[k] = ep
	}
	// Ring phase, mirroring the full build's k = lo..hi-1 pass: a link is
	// real when both endpoints are owned, a stub port otherwise. The stub
	// occupies the same NextFreePort slot the Connect would have.
	full := hi-lo == regions
	for k := lo; k < hi; k++ {
		e := dataplane.DeviceID(fmt.Sprintf("E%d", k))
		next := (k + 1) % regions
		a := dataplane.DeviceID(fmt.Sprintf("A%d", next))
		if next >= lo && next < hi && (k+1 < hi || full) {
			if _, err := net.Connect(e, a, 4*time.Millisecond, 10_000); err != nil {
				return nil, err
			}
			continue
		}
		sw := net.Switch(e)
		sw.AddPort(sw.NextFreePort())
	}
	if !full {
		// The ring-in port of the first owned region: its neighbor's
		// Connect would have added it in the full build.
		sw := net.Switch(dataplane.DeviceID(fmt.Sprintf("A%d", lo)))
		sw.AddPort(sw.NextFreePort())
	}

	for k := lo; k < hi; k++ {
		leaf := core.NewController(fmt.Sprintf("L%d", k), 1, k)
		if err := core.BootstrapLeaf(net, leaf, specs[k]); err != nil {
			return nil, err
		}
		if shards != 0 {
			leaf.SetUEShardCount(shards)
		}
		if controlDelay > 0 {
			if err := cl.attachDelayed(leaf, controlDelay); err != nil {
				return nil, err
			}
		}
		cl.Regions[k].Leaf = leaf
		addInterdomain(&cl.Regions[k], egresses[k])
	}
	return cl, nil
}

// OwnedLeaves lists the cluster's leaf controllers in region order — for
// a slice, only the owned ones.
func (cl *Cluster) OwnedLeaves() []*core.Controller {
	out := make([]*core.Controller, 0, cl.Hi-cl.Lo)
	for k := cl.Lo; k < cl.Hi; k++ {
		out = append(out, cl.Regions[k].Leaf)
	}
	return out
}
