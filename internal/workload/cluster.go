package workload

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dataplane"
	"repro/internal/interdomain"
	"repro/internal/reca"
)

// Region is one leaf region of a generated cluster.
type Region struct {
	// Leaf is the region's controller.
	Leaf *core.Controller
	// Group is the region's border BS group; border groups are exposed to
	// the parent under their own ID, so Group doubles as the G-BS ID
	// inter-region handovers target.
	Group dataplane.DeviceID
	// BSes are the base stations camped on Group.
	BSes []dataplane.DeviceID
	// Prefix is the region's egress prefix.
	Prefix interdomain.PrefixID
	// Attach is the radio attachment port carrying Group.
	Attach dataplane.PortRef
}

// Cluster is an N-region deployment the engine drives: diamond regions
// (access — two middles — egress) joined in a ring, one border group and
// one egress prefix per region, under a two-level hierarchy.
type Cluster struct {
	Net     *dataplane.Network
	Hier    *core.Hierarchy
	Regions []Region
}

// delayDevice emulates the control-channel round trip of a WAN-separated
// switch: every southbound mutation sleeps controlDelay before reaching
// the device, so concurrent operations overlap their waits exactly as
// pipelined controller I/O does (the same model as core's southbound
// benchmarks, which emulate the delay at the connection layer). The wall
// clock never feeds replayable state — the sleeps only shape measured
// throughput.
type delayDevice struct {
	core.Device
	core.RemoteSouthbound // flush concurrently across path devices
	delay                 time.Duration
}

func (d delayDevice) InstallRule(r dataplane.Rule) error {
	time.Sleep(d.delay)
	return d.Device.InstallRule(r)
}

func (d delayDevice) RemoveRules(owner string) error {
	time.Sleep(d.delay)
	return d.Device.RemoveRules(owner)
}

func (d delayDevice) RemoveRulesBefore(owner string, version int) error {
	time.Sleep(d.delay)
	return d.Device.RemoveRulesBefore(owner, version)
}

func (d delayDevice) RemoveRulesVersion(owner string, version int) error {
	time.Sleep(d.delay)
	return d.Device.RemoveRulesVersion(owner, version)
}

// BuildCluster constructs the R-region ring with bsPerRegion base
// stations per region and the given UE-store shard count on every
// controller (0 keeps core.DefaultUEShards; 1 is the coarse single-mutex
// baseline). controlDelay > 0 wraps every leaf's physical switches in a
// delayDevice emulating controller↔switch WAN latency. Construction is
// deterministic — no RNG is consumed.
func BuildCluster(regions, bsPerRegion, shards int, controlDelay time.Duration) (*Cluster, error) {
	if regions < 2 {
		return nil, fmt.Errorf("workload: need at least 2 regions, got %d", regions)
	}
	if bsPerRegion < 1 {
		return nil, fmt.Errorf("workload: need at least 1 BS per region, got %d", bsPerRegion)
	}
	net := dataplane.NewNetwork()
	cl := &Cluster{Net: net}
	specs := make([]core.LeafSpec, 0, regions)
	egresses := make([]*dataplane.EgressPoint, 0, regions)
	for k := 0; k < regions; k++ {
		a := dataplane.DeviceID(fmt.Sprintf("A%d", k))
		ma := dataplane.DeviceID(fmt.Sprintf("M%da", k))
		mb := dataplane.DeviceID(fmt.Sprintf("M%db", k))
		e := dataplane.DeviceID(fmt.Sprintf("E%d", k))
		for _, id := range []dataplane.DeviceID{a, ma, mb, e} {
			net.AddSwitch(id)
		}
		for _, c := range []struct {
			x, y dataplane.DeviceID
			lat  time.Duration
		}{{a, ma, 2 * time.Millisecond}, {a, mb, 3 * time.Millisecond},
			{ma, e, 2 * time.Millisecond}, {mb, e, 3 * time.Millisecond}} {
			if _, err := net.Connect(c.x, c.y, c.lat, 10_000); err != nil {
				return nil, err
			}
		}
		g := dataplane.DeviceID(fmt.Sprintf("g%d", k))
		rp, err := net.AddRadioPort(a, g)
		if err != nil {
			return nil, err
		}
		ep, err := net.AddEgress(fmt.Sprintf("X%d", k), e, fmt.Sprintf("isp%d", k))
		if err != nil {
			return nil, err
		}
		attach := dataplane.PortRef{Dev: a, Port: rp.ID}
		bses := make([]dataplane.DeviceID, bsPerRegion)
		bsGroup := make(map[dataplane.DeviceID]dataplane.DeviceID, bsPerRegion)
		for j := range bses {
			bses[j] = dataplane.DeviceID(fmt.Sprintf("b%d-%d", k, j))
			bsGroup[bses[j]] = g
		}
		cl.Regions = append(cl.Regions, Region{
			Group:  g,
			BSes:   bses,
			Prefix: interdomain.PrefixID(fmt.Sprintf("pfx%d", k)),
			Attach: attach,
		})
		specs = append(specs, core.LeafSpec{
			ID:       fmt.Sprintf("L%d", k),
			Switches: []dataplane.DeviceID{a, ma, mb, e},
			Radios:   []reca.RadioAttachment{{ID: g, Attach: attach, Border: true}},
			BSGroup:  bsGroup,
		})
		egresses = append(egresses, ep)
	}
	// Ring of cross-region links: E(k) — A(k+1 mod R).
	for k := 0; k < regions; k++ {
		e := dataplane.DeviceID(fmt.Sprintf("E%d", k))
		a := dataplane.DeviceID(fmt.Sprintf("A%d", (k+1)%regions))
		if _, err := net.Connect(e, a, 4*time.Millisecond, 10_000); err != nil {
			return nil, err
		}
	}

	hier, err := core.NewTwoLevel(net, "root", specs)
	if err != nil {
		return nil, err
	}
	cl.Hier = hier
	if shards != 0 {
		for _, c := range hier.All {
			c.SetUEShardCount(shards)
		}
	}
	if controlDelay > 0 {
		// Shadow each leaf's physical switch adapters with the delay
		// wrapper; the inner device stays attached underneath, so the
		// controller back-pointer (packet-in, port-status delivery) keeps
		// pointing at the real adapter (the chaos harness wraps its
		// FaultyDevice the same way).
		for _, leaf := range hier.Leaves {
			for _, d := range leaf.Devices() {
				if net.Switch(d.ID()) == nil {
					continue // G-switch or other virtual device
				}
				leaf.AttachDevice(delayDevice{Device: d, delay: controlDelay})
			}
		}
	}
	// Interdomain: each region's prefix exits via its own egress.
	for k := range cl.Regions {
		r := &cl.Regions[k]
		r.Leaf = hier.Leaves[k]
		ep := egresses[k]
		r.Leaf.AddInterdomainRoutes([]interdomain.Route{{
			Prefix: r.Prefix, Egress: ep.ID, EgressSwitch: ep.Switch,
			Metrics: interdomain.Metrics{Hops: 2, RTT: 8 * time.Millisecond},
		}}, dataplane.PortRef{Dev: ep.Switch, Port: ep.Port})
		r.Leaf.PropagateInterdomain()
	}
	return cl, nil
}
