package workload

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dataplane"
	"repro/internal/interdomain"
	"repro/internal/reca"
	"repro/internal/southbound"
)

// Region is one leaf region of a generated cluster.
type Region struct {
	// Leaf is the region's controller.
	Leaf *core.Controller
	// Group is the region's border BS group; border groups are exposed to
	// the parent under their own ID, so Group doubles as the G-BS ID
	// inter-region handovers target.
	Group dataplane.DeviceID
	// BSes are the base stations camped on Group.
	BSes []dataplane.DeviceID
	// Prefix is the region's egress prefix.
	Prefix interdomain.PrefixID
	// Attach is the radio attachment port carrying Group.
	Attach dataplane.PortRef
}

// Cluster is an N-region deployment the engine drives: diamond regions
// (access — two middles — egress) joined in a ring, one border group and
// one egress prefix per region, under a two-level hierarchy.
type Cluster struct {
	Net     *dataplane.Network
	Hier    *core.Hierarchy
	Regions []Region
}

// BuildCluster constructs the R-region ring with bsPerRegion base
// stations per region and the given UE-store shard count on every
// controller (0 keeps core.DefaultUEShards; 1 is the coarse single-mutex
// baseline). controlDelay > 0 re-attaches every leaf's physical switches
// through the real southbound protocol — a switch agent served over an
// in-memory pipe whose device→controller leg is held back by a
// DelayedConn — so the workload exercises the binary codec, the
// ConnDevice completion pipeline, and genuine WAN round-trip overlap
// rather than a per-call sleep. Construction is deterministic — no RNG
// is consumed.
func BuildCluster(regions, bsPerRegion, shards int, controlDelay time.Duration) (*Cluster, error) {
	if regions < 2 {
		return nil, fmt.Errorf("workload: need at least 2 regions, got %d", regions)
	}
	if bsPerRegion < 1 {
		return nil, fmt.Errorf("workload: need at least 1 BS per region, got %d", bsPerRegion)
	}
	net := dataplane.NewNetwork()
	cl := &Cluster{Net: net}
	specs := make([]core.LeafSpec, 0, regions)
	egresses := make([]*dataplane.EgressPoint, 0, regions)
	for k := 0; k < regions; k++ {
		a := dataplane.DeviceID(fmt.Sprintf("A%d", k))
		ma := dataplane.DeviceID(fmt.Sprintf("M%da", k))
		mb := dataplane.DeviceID(fmt.Sprintf("M%db", k))
		e := dataplane.DeviceID(fmt.Sprintf("E%d", k))
		for _, id := range []dataplane.DeviceID{a, ma, mb, e} {
			net.AddSwitch(id)
		}
		for _, c := range []struct {
			x, y dataplane.DeviceID
			lat  time.Duration
		}{{a, ma, 2 * time.Millisecond}, {a, mb, 3 * time.Millisecond},
			{ma, e, 2 * time.Millisecond}, {mb, e, 3 * time.Millisecond}} {
			if _, err := net.Connect(c.x, c.y, c.lat, 10_000); err != nil {
				return nil, err
			}
		}
		g := dataplane.DeviceID(fmt.Sprintf("g%d", k))
		rp, err := net.AddRadioPort(a, g)
		if err != nil {
			return nil, err
		}
		ep, err := net.AddEgress(fmt.Sprintf("X%d", k), e, fmt.Sprintf("isp%d", k))
		if err != nil {
			return nil, err
		}
		attach := dataplane.PortRef{Dev: a, Port: rp.ID}
		bses := make([]dataplane.DeviceID, bsPerRegion)
		bsGroup := make(map[dataplane.DeviceID]dataplane.DeviceID, bsPerRegion)
		for j := range bses {
			bses[j] = dataplane.DeviceID(fmt.Sprintf("b%d-%d", k, j))
			bsGroup[bses[j]] = g
		}
		cl.Regions = append(cl.Regions, Region{
			Group:  g,
			BSes:   bses,
			Prefix: interdomain.PrefixID(fmt.Sprintf("pfx%d", k)),
			Attach: attach,
		})
		specs = append(specs, core.LeafSpec{
			ID:       fmt.Sprintf("L%d", k),
			Switches: []dataplane.DeviceID{a, ma, mb, e},
			Radios:   []reca.RadioAttachment{{ID: g, Attach: attach, Border: true}},
			BSGroup:  bsGroup,
		})
		egresses = append(egresses, ep)
	}
	// Ring of cross-region links: E(k) — A(k+1 mod R).
	for k := 0; k < regions; k++ {
		e := dataplane.DeviceID(fmt.Sprintf("E%d", k))
		a := dataplane.DeviceID(fmt.Sprintf("A%d", (k+1)%regions))
		if _, err := net.Connect(e, a, 4*time.Millisecond, 10_000); err != nil {
			return nil, err
		}
	}

	hier, err := core.NewTwoLevel(net, "root", specs)
	if err != nil {
		return nil, err
	}
	cl.Hier = hier
	if shards != 0 {
		for _, c := range hier.All {
			c.SetUEShardCount(shards)
		}
	}
	if controlDelay > 0 {
		// Replace each leaf's in-process switch adapters with protocol
		// devices: a real agent per switch served over a pipe, replies
		// delayed by the emulated propagation time. Fences across switches
		// overlap through the ConnDevice barrier-completion pipeline, so a
		// multi-device path setup pays ~one delay of wall time, not one
		// per device — the behavior the paper's WAN deployment depends on.
		for _, leaf := range hier.Leaves {
			for _, d := range leaf.Devices() {
				sw := net.Switch(d.ID())
				if sw == nil {
					continue // G-switch or other virtual device
				}
				agent := southbound.NewSwitchAgent(net, sw)
				ctrlEnd, devEnd := southbound.Pipe(256)
				go agent.Serve(southbound.NewDelayedConn(devEnd, controlDelay))
				cd, err := core.DialDevice(ctrlEnd, leaf.ID)
				if err != nil {
					return nil, fmt.Errorf("workload: dial %s: %w", d.ID(), err)
				}
				leaf.AttachDevice(cd)
			}
		}
	}
	// Interdomain: each region's prefix exits via its own egress.
	for k := range cl.Regions {
		r := &cl.Regions[k]
		r.Leaf = hier.Leaves[k]
		ep := egresses[k]
		r.Leaf.AddInterdomainRoutes([]interdomain.Route{{
			Prefix: r.Prefix, Egress: ep.ID, EgressSwitch: ep.Switch,
			Metrics: interdomain.Metrics{Hops: 2, RTT: 8 * time.Millisecond},
		}}, dataplane.PortRef{Dev: ep.Switch, Port: ep.Port})
		r.Leaf.PropagateInterdomain()
	}
	return cl, nil
}
