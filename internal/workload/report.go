package workload

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"runtime"

	"repro/internal/core"
	"repro/internal/netem"
)

// TraceDigest hashes the replayable event schedule: FNV-64a over every
// op's trace line. Two runs with the same seed and config must produce
// identical digests regardless of worker count or mode.
func TraceDigest(ops []Op) string {
	h := fnv.New64a()
	for _, op := range ops {
		fmt.Fprintln(h, op.TraceLine())
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// StateSection renders one controller's contribution to the state digest:
// a header line naming the controller, then each UE row's seed-determined
// fields — UE, BS, Group, Prefix, QoS, Active. PathID and HandledBy are
// deliberately excluded: path identifiers depend on the interleaving of
// concurrent setups, while the logical table state does not. Sections are
// the unit a distributed run ships to its launcher, which composes them
// into the same digest an in-process run computes directly.
func StateSection(c *core.Controller) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "# %s\n", c.ID)
	for _, r := range c.UERecords() { // sorted by UE ID
		fmt.Fprintf(&b, "%s %s %s %s %d %t\n", r.UE, r.BS, r.Group, r.Prefix, r.QoS, r.Active)
	}
	return b.Bytes()
}

// ComposeStateDigest hashes pre-rendered state sections in order. Callers
// must pass the root's section first, then each leaf's in region order —
// the order StateDigest uses — for the digests to be comparable.
func ComposeStateDigest(sections [][]byte) string {
	h := fnv.New64a()
	for _, s := range sections {
		h.Write(s)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// StateDigest hashes the final logical UE-table state across every
// controller in the cluster: root first, then leaves in region order.
func StateDigest(cl *Cluster) string {
	sections := make([][]byte, 0, 1+len(cl.Hier.Leaves))
	sections = append(sections, StateSection(cl.Hier.Root))
	for _, leaf := range cl.Hier.Leaves {
		sections = append(sections, StateSection(leaf))
	}
	return ComposeStateDigest(sections)
}

// FinalUECount sums UE-table rows across every controller.
func FinalUECount(cl *Cluster) int {
	n := cl.Hier.Root.UECount()
	for _, leaf := range cl.Hier.Leaves {
		n += leaf.UECount()
	}
	return n
}

// BaselineComparison is the sharded-versus-coarse throughput comparison
// cmd/loadgen -compare emits (the ISSUE's ≥2× acceptance check).
type BaselineComparison struct {
	BaselineShards int     `json:"baseline_shards"`
	ShardedShards  int     `json:"sharded_shards"`
	BaselineEPS    float64 `json:"baseline_events_per_sec"`
	ShardedEPS     float64 `json:"sharded_events_per_sec"`
	Speedup        float64 `json:"speedup"`
}

// ReportConfig is the config echo embedded in a report, including the
// runtime provenance (Go toolchain, scheduler width, host CPU count) a
// reader needs to judge whether two benchmark documents are comparable.
type ReportConfig struct {
	Seed        int64   `json:"seed"`
	Regions     int     `json:"regions"`
	BSPerRegion int     `json:"bs_per_region"`
	UEs         int     `json:"ues"`
	Events      int     `json:"events"`
	Shards      int     `json:"shards"`
	Mode        string  `json:"mode"`
	Workers     int     `json:"workers"`
	MaxInFlight int     `json:"max_in_flight"`
	RatePerSec  float64 `json:"rate_per_sec"`
	GoVersion   string  `json:"go_version"`
	GoMaxProcs  int     `json:"gomaxprocs"`
	NumCPU      int     `json:"num_cpu"`
}

// buildReportConfig echoes cfg with the runtime provenance filled in.
func buildReportConfig(cfg Config) ReportConfig {
	return ReportConfig{
		Seed: cfg.Seed, Regions: cfg.Regions, BSPerRegion: cfg.BSPerRegion,
		UEs: cfg.UEs, Events: cfg.Events, Shards: cfg.Shards,
		Mode: string(cfg.Mode), Workers: cfg.Workers,
		MaxInFlight: cfg.MaxInFlight, RatePerSec: cfg.RatePerSec,
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
}

// Report is the BENCH_workload.json document.
type Report struct {
	Config       ReportConfig        `json:"config"`
	Events       int                 `json:"events"`
	Failures     int64               `json:"failures"`
	ElapsedSec   float64             `json:"elapsed_sec"`
	EventsPerSec float64             `json:"events_per_sec"`
	Stalls       int64               `json:"stalls"`
	Ops          map[string]OpStats  `json:"ops"`
	TraceDigest  string              `json:"trace_digest"`
	StateDigest  string              `json:"state_digest"`
	FinalUEs     int                 `json:"final_ues"`
	Baseline     *BaselineComparison `json:"baseline,omitempty"`
	Distributed  *DistributedStats   `json:"distributed,omitempty"`
	Failover     *FailoverSection    `json:"failover,omitempty"`
	Impairment   *ImpairmentMatrix   `json:"impairment,omitempty"`
}

// ImpairmentScenario is one row of the impaired-WAN scenario matrix: the
// channel conditions, the run outcome, the link-level netem accounting,
// and the adaptive-timeout telemetry (samples accepted, barrier retries
// spent, replies that arrived after their fence expired).
type ImpairmentScenario struct {
	Name     string        `json:"name"`
	Profile  netem.Profile `json:"profile"`
	Adaptive bool          `json:"adaptive_timeouts"`
	// BestEffort marks a deliberately mis-tuned baseline (e.g. a tight
	// fixed timeout under jitter) that is expected to fail operations; it
	// is reported for comparison but excluded from the matrix's
	// zero-failure and digest-equality gates.
	BestEffort   bool        `json:"best_effort,omitempty"`
	Events       int         `json:"events"`
	Failures     int64       `json:"failures"`
	ElapsedSec   float64     `json:"elapsed_sec"`
	EventsPerSec float64     `json:"events_per_sec"`
	TraceDigest  string      `json:"trace_digest"`
	StateDigest  string      `json:"state_digest"`
	Netem        netem.Stats `json:"netem"`
	// RTTSamples / BarrierRetries / StaleReplies are deltas of the
	// process-global southbound counters over this scenario's run.
	RTTSamples     int64             `json:"rtt_samples"`
	BarrierRetries int64             `json:"barrier_retries"`
	StaleReplies   int64             `json:"stale_replies"`
	Partition      *PartitionOutcome `json:"partition,omitempty"`
}

// PartitionOutcome records a scheduled-partition scenario's liveness
// trajectory: suspects declared while the region was dark, targeted
// rediscoveries on heal, and whether every link came back up.
type PartitionOutcome struct {
	Suspects      int64 `json:"suspects"`
	Rediscoveries int64 `json:"rediscoveries"`
	LinksRestored bool  `json:"links_restored"`
}

// ImpairmentMatrix is the "impairment" report section cmd/loadgen
// -impair-matrix emits.
type ImpairmentMatrix struct {
	Scenarios []ImpairmentScenario `json:"scenarios"`
}

// RegionProcStats is one region process's contribution to a distributed
// run.
type RegionProcStats struct {
	// Proc is the process index; Lo/Hi bound its owned regions.
	Proc int `json:"proc"`
	Lo   int `json:"lo"`
	Hi   int `json:"hi"`
	// Events is the number of schedule ops the process executed.
	Events       int     `json:"events"`
	Failures     int64   `json:"failures"`
	ElapsedSec   float64 `json:"elapsed_sec"`
	EventsPerSec float64 `json:"events_per_sec"`
	// RegionEvents maps each owned region index to its op count.
	RegionEvents map[string]int `json:"region_events"`
}

// DistributedStats summarizes a multi-process run: the per-process rates
// and the aggregate the scaling experiment plots.
type DistributedStats struct {
	Procs int               `json:"procs"`
	Per   []RegionProcStats `json:"per_proc"`
	// AggregateEPS is total executed events over the slowest process's
	// wall time — the cluster-level sustained rate.
	AggregateEPS float64 `json:"aggregate_events_per_sec"`
}

// BuildReport assembles the report for one finished run.
func BuildReport(cfg Config, cl *Cluster, res *Result) *Report {
	if err := cfg.normalize(); err != nil {
		// Run already succeeded with this config; normalize cannot fail now.
		panic(err)
	}
	return &Report{
		Config:       buildReportConfig(cfg),
		Events:       len(res.Ops),
		Failures:     res.Failures,
		ElapsedSec:   res.Elapsed.Seconds(),
		EventsPerSec: res.EventsPerSec(),
		Stalls:       res.Stalls,
		Ops:          res.PerOp,
		TraceDigest:  TraceDigest(res.Ops),
		StateDigest:  StateDigest(cl),
		FinalUEs:     FinalUECount(cl),
	}
}
