package workload

import (
	"fmt"
	"hash/fnv"

	"repro/internal/core"
)

// TraceDigest hashes the replayable event schedule: FNV-64a over every
// op's trace line. Two runs with the same seed and config must produce
// identical digests regardless of worker count or mode.
func TraceDigest(ops []Op) string {
	h := fnv.New64a()
	for _, op := range ops {
		fmt.Fprintln(h, op.TraceLine())
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// StateDigest hashes the final logical UE-table state across every
// controller in the cluster: per controller (root first, then leaves in
// region order), each UE row's seed-determined fields — UE, BS, Group,
// Prefix, QoS, Active. PathID and HandledBy are deliberately excluded:
// path identifiers depend on the interleaving of concurrent setups, while
// the logical table state does not.
func StateDigest(cl *Cluster) string {
	h := fnv.New64a()
	write := func(c *core.Controller) {
		fmt.Fprintf(h, "# %s\n", c.ID)
		for _, r := range c.UERecords() { // sorted by UE ID
			fmt.Fprintf(h, "%s %s %s %s %d %t\n", r.UE, r.BS, r.Group, r.Prefix, r.QoS, r.Active)
		}
	}
	write(cl.Hier.Root)
	for _, leaf := range cl.Hier.Leaves {
		write(leaf)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// FinalUECount sums UE-table rows across every controller.
func FinalUECount(cl *Cluster) int {
	n := cl.Hier.Root.UECount()
	for _, leaf := range cl.Hier.Leaves {
		n += leaf.UECount()
	}
	return n
}

// BaselineComparison is the sharded-versus-coarse throughput comparison
// cmd/loadgen -compare emits (the ISSUE's ≥2× acceptance check).
type BaselineComparison struct {
	BaselineShards int     `json:"baseline_shards"`
	ShardedShards  int     `json:"sharded_shards"`
	BaselineEPS    float64 `json:"baseline_events_per_sec"`
	ShardedEPS     float64 `json:"sharded_events_per_sec"`
	Speedup        float64 `json:"speedup"`
}

// ReportConfig is the config echo embedded in a report.
type ReportConfig struct {
	Seed        int64   `json:"seed"`
	Regions     int     `json:"regions"`
	BSPerRegion int     `json:"bs_per_region"`
	UEs         int     `json:"ues"`
	Events      int     `json:"events"`
	Shards      int     `json:"shards"`
	Mode        string  `json:"mode"`
	Workers     int     `json:"workers"`
	MaxInFlight int     `json:"max_in_flight"`
	RatePerSec  float64 `json:"rate_per_sec"`
}

// Report is the BENCH_workload.json document.
type Report struct {
	Config       ReportConfig        `json:"config"`
	Events       int                 `json:"events"`
	Failures     int64               `json:"failures"`
	ElapsedSec   float64             `json:"elapsed_sec"`
	EventsPerSec float64             `json:"events_per_sec"`
	Stalls       int64               `json:"stalls"`
	Ops          map[string]OpStats  `json:"ops"`
	TraceDigest  string              `json:"trace_digest"`
	StateDigest  string              `json:"state_digest"`
	FinalUEs     int                 `json:"final_ues"`
	Baseline     *BaselineComparison `json:"baseline,omitempty"`
}

// BuildReport assembles the report for one finished run.
func BuildReport(cfg Config, cl *Cluster, res *Result) *Report {
	if err := cfg.normalize(); err != nil {
		// Run already succeeded with this config; normalize cannot fail now.
		panic(err)
	}
	return &Report{
		Config: ReportConfig{
			Seed: cfg.Seed, Regions: cfg.Regions, BSPerRegion: cfg.BSPerRegion,
			UEs: cfg.UEs, Events: cfg.Events, Shards: cfg.Shards,
			Mode: string(cfg.Mode), Workers: cfg.Workers,
			MaxInFlight: cfg.MaxInFlight, RatePerSec: cfg.RatePerSec,
		},
		Events:       len(res.Ops),
		Failures:     res.Failures,
		ElapsedSec:   res.Elapsed.Seconds(),
		EventsPerSec: res.EventsPerSec(),
		Stalls:       res.Stalls,
		Ops:          res.PerOp,
		TraceDigest:  TraceDigest(res.Ops),
		StateDigest:  StateDigest(cl),
		FinalUEs:     FinalUECount(cl),
	}
}
