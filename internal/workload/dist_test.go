package workload_test

import (
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/northbound"
	"repro/internal/southbound"
	"repro/internal/workload"
)

// distCfg is the shared config for the distributed-equivalence tests:
// small enough to run in seconds, large enough that every op kind and
// cross-region interaction occurs.
func distCfg() workload.Config {
	return workload.Config{
		Seed: 7, Regions: 4, BSPerRegion: 2,
		UEs: 2000, Events: 4000, Shards: 4,
		Mode: workload.ModeClosed, Workers: 4, MaxInFlight: 16,
		RemotePrefixShare: 0.3,
	}
}

// buildDistCluster assembles a procs-way distributed cluster over real
// TCP using the same primitives cmd/region and the launcher use, minus
// the process boundary: RegionProc slices connected to a launcher-side
// root via northbound wires.
func buildDistCluster(t *testing.T, cfg workload.Config, procs int) (*core.Controller, []*workload.RegionProc) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()

	bounds := workload.SliceBounds(cfg.Regions, procs)
	ps := make([]*workload.RegionProc, procs)
	owner := make([]*workload.RegionProc, cfg.Regions)
	for i, b := range bounds {
		p, err := workload.NewRegionProc(workload.RegionConfig{
			Config: cfg, Lo: b[0], Hi: b[1], Addr: ln.Addr().String(), Proc: i,
		})
		if err != nil {
			t.Fatalf("proc %d: %v", i, err)
		}
		ps[i] = p
		for k := b[0]; k < b[1]; k++ {
			owner[k] = p
		}
		t.Cleanup(p.Close)
	}

	root := workload.NewDistRoot(cfg.Regions, cfg.Shards)
	devs := make([]*core.ConnDevice, 0, cfg.Regions)
	for k := 0; k < cfg.Regions; k++ {
		errCh := make(chan error, 1)
		p := owner[k]
		go func() { errCh <- p.ConnectRegion(k) }()
		nc, err := ln.Accept()
		if err != nil {
			t.Fatalf("accept region %d: %v", k, err)
		}
		d, err := northbound.AttachRemoteChild(root, southbound.NewBinConn(nc))
		if err != nil {
			t.Fatalf("attach region %d: %v", k, err)
		}
		if err := <-errCh; err != nil {
			t.Fatalf("connect region %d: %v", k, err)
		}
		devs = append(devs, d)
	}
	if err := workload.FinishDistRoot(root, devs); err != nil {
		t.Fatalf("finish root: %v", err)
	}
	for k := 0; k < cfg.Regions; k++ {
		if err := owner[k].Propagate(k); err != nil {
			t.Fatalf("propagate region %d: %v", k, err)
		}
	}
	return root, ps
}

// TestDistributedDigestsMatchInProcess is the replay-equivalence check
// the multi-process mode stands on: the same (seed, config) executed on
// a 2-slice distributed 4-region cluster must land every UE table in the
// same final state as the in-process run — composed state digest, final
// row count, and failure count all identical.
func TestDistributedDigestsMatchInProcess(t *testing.T) {
	cfg := distCfg()

	eng, cl, err := workload.NewEngine(cfg)
	if err != nil {
		t.Fatalf("in-process engine: %v", err)
	}
	defer cl.Close()
	ref := workload.BuildReport(cfg, cl, eng.Run())

	root, ps := buildDistCluster(t, cfg, 2)

	var (
		wg  sync.WaitGroup
		mu  sync.Mutex
		prs = make([]*workload.ProcResult, len(ps))
	)
	for i, p := range ps {
		wg.Add(1)
		go func(i int, p *workload.RegionProc) {
			defer wg.Done()
			pr, err := p.Run()
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				t.Errorf("proc %d run: %v", i, err)
				return
			}
			prs[i] = pr
		}(i, p)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	sections := [][]byte{workload.StateSection(root)}
	events, failures := 0, int64(0)
	for _, pr := range prs {
		events += pr.Events
		failures += pr.Failures
	}
	for k := 0; k < cfg.Regions; k++ {
		for _, p := range ps {
			leaf := p.Cluster().Regions[k].Leaf
			if leaf != nil {
				sections = append(sections, workload.StateSection(leaf))
				break
			}
		}
	}

	if events != ref.Events {
		t.Errorf("distributed executed %d events, in-process %d", events, ref.Events)
	}
	if failures != ref.Failures {
		t.Errorf("distributed failures %d, in-process %d", failures, ref.Failures)
	}
	got := workload.ComposeStateDigest(sections)
	if got != ref.StateDigest {
		t.Errorf("state digest mismatch: distributed %s, in-process %s", got, ref.StateDigest)
	}

	for i, p := range ps {
		if err := p.Drain(2 * time.Second); err != nil {
			t.Errorf("proc %d drain: %v", i, err)
		}
	}
}

// TestSliceBounds pins the contiguous split the launcher and the region
// processes must agree on.
func TestSliceBounds(t *testing.T) {
	got := workload.SliceBounds(5, 2)
	want := [][2]int{{0, 3}, {3, 5}}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("slice %d: got %v, want %v", i, got[i], want[i])
		}
	}
}
