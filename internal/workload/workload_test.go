package workload

import (
	"testing"

	"repro/internal/ltetrace"
)

func testConfig() Config {
	return Config{
		Seed: 42, Regions: 3, BSPerRegion: 2,
		UEs: 150, Events: 1500,
	}
}

// TestGeneratorDeterminism: the schedule is a pure function of (seed,
// config) — and different seeds diverge.
func TestGeneratorDeterminism(t *testing.T) {
	cfg := testConfig()
	if err := cfg.normalize(); err != nil {
		t.Fatal(err)
	}
	a := NewGenerator(cfg).Generate()
	b := NewGenerator(cfg).Generate()
	if len(a) != cfg.Events {
		t.Fatalf("generated %d ops, want %d", len(a), cfg.Events)
	}
	if TraceDigest(a) != TraceDigest(b) {
		t.Fatal("same seed produced different schedules")
	}
	cfg2 := cfg
	cfg2.Seed = 43
	if err := cfg2.normalize(); err != nil {
		t.Fatal(err)
	}
	if TraceDigest(a) == TraceDigest(NewGenerator(cfg2).Generate()) {
		t.Fatal("different seeds produced identical schedules")
	}
	// The default mix must exercise every operation kind.
	var seen [numOpKinds]int
	for _, op := range a {
		seen[op.Kind]++
	}
	for _, k := range OpKinds() {
		if seen[k] == 0 {
			t.Fatalf("default mix never generated %s", k)
		}
	}
}

// TestGeneratorLifecycle: the schedule is executable — per UE, the op
// sequence respects the attach → {setup,teardown,handover}* → detach
// lifecycle the controllers enforce.
func TestGeneratorLifecycle(t *testing.T) {
	cfg := testConfig()
	if err := cfg.normalize(); err != nil {
		t.Fatal(err)
	}
	state := make(map[int]int) // UE → generator state
	for _, op := range NewGenerator(cfg).Generate() {
		s := state[op.UE]
		valid := false
		switch op.Kind {
		case OpAttach:
			valid = s == ueDetached
			s = ueActive
		case OpBearerSetup:
			valid = s == ueIdle
			s = ueActive
		case OpBearerTeardown:
			valid = s == ueActive
			s = ueIdle
		case OpHandoverIntra:
			valid = s == ueActive
		case OpHandoverInter:
			valid = s == ueActive && op.Dst != op.Region
			s = ueRoamed
		case OpDetach:
			valid = s != ueDetached
			s = ueDetached
		}
		if !valid {
			t.Fatalf("op %d (%s) illegal for UE %d in state %d", op.Seq, op.Kind, op.UE, state[op.UE])
		}
		state[op.UE] = s
	}
}

// TestEngineDeterminism: trace and final logical state digests are
// identical across worker counts and pacing modes; no operation fails.
func TestEngineDeterminism(t *testing.T) {
	type variant struct {
		name    string
		mutate  func(*Config)
		workers int
	}
	variants := []variant{
		{"serial", func(c *Config) { c.Workers = 1 }, 1},
		{"parallel", func(c *Config) { c.Workers = 8 }, 8},
		{"open-loop", func(c *Config) { c.Workers = 8; c.Mode = ModeOpen; c.MaxInFlight = 4 }, 8},
	}
	var trace, state string
	for _, v := range variants {
		cfg := testConfig()
		v.mutate(&cfg)
		eng, cl, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res := eng.Run()
		if res.Failures != 0 {
			t.Fatalf("%s: %d failures, first: %v", v.name, res.Failures, res.FirstErr)
		}
		td, sd := TraceDigest(res.Ops), StateDigest(cl)
		cl.Close()
		if trace == "" {
			trace, state = td, sd
			continue
		}
		if td != trace {
			t.Fatalf("%s: trace digest %s, want %s", v.name, td, trace)
		}
		if sd != state {
			t.Fatalf("%s: state digest %s, want %s", v.name, sd, state)
		}
	}
}

// TestEngineReport: the report carries the per-op stats and digests the
// CI smoke job asserts on.
func TestEngineReport(t *testing.T) {
	cfg := testConfig()
	eng, cl, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	res := eng.Run()
	rep := BuildReport(cfg, cl, res)
	if rep.Events != cfg.Events || rep.Failures != 0 {
		t.Fatalf("events=%d failures=%d", rep.Events, rep.Failures)
	}
	if rep.EventsPerSec <= 0 || rep.ElapsedSec <= 0 {
		t.Fatalf("rates not measured: eps=%f elapsed=%f", rep.EventsPerSec, rep.ElapsedSec)
	}
	if rep.TraceDigest == "" || rep.StateDigest == "" {
		t.Fatal("missing digests")
	}
	att, ok := rep.Ops[OpAttach.String()]
	if !ok || att.Count == 0 {
		t.Fatal("attach stats missing")
	}
	if att.P99 < att.P50 || att.Max < att.P99 {
		t.Fatalf("quantiles inverted: p50=%v p99=%v max=%v", att.P50, att.P99, att.Max)
	}
	// The final UE table must hold exactly the attached (non-detached)
	// population, and the roamed/active/idle split must match the
	// generator's view.
	gen := NewGenerator(func() Config { c := cfg; _ = c.normalize(); return c }())
	gen.Generate()
	want := cfg.UEs - gen.pools[ueDetached].len()
	if rep.FinalUEs != want {
		t.Fatalf("final UE rows = %d, generator expects %d attached", rep.FinalUEs, want)
	}
}

// TestMixFromLTE: the derived mix and per-BS weights are positive and
// shaped by the diurnal model.
func TestMixFromLTE(t *testing.T) {
	p := ltetrace.Params{}
	mix, weights := MixFromLTE(p, 12*60, 3, 2)
	if len(weights) != 6 {
		t.Fatalf("got %d BS weights, want 6", len(weights))
	}
	for i, w := range weights {
		if w <= 0 {
			t.Fatalf("weight[%d] = %f", i, w)
		}
	}
	if mix.Attach <= 0 || mix.BearerSetup <= 0 || mix.HandoverIntra <= 0 || mix.HandoverInter <= 0 {
		t.Fatalf("degenerate mix: %+v", mix)
	}
	if mix.Attach != mix.Detach || mix.BearerSetup != mix.BearerTeardown {
		t.Fatal("mix must keep the population stationary")
	}
	// Noon rates must exceed the 4am trough (the model's diurnal shape).
	night, _ := MixFromLTE(p, 4*60, 3, 2)
	if mix.BearerSetup <= night.BearerSetup {
		t.Fatalf("noon bearer weight %f not above 4am %f", mix.BearerSetup, night.BearerSetup)
	}
	// An LTE-derived run must execute cleanly end to end.
	cfg := testConfig()
	cfg.Mix, cfg.BSWeights = MixFromLTE(p, 12*60, cfg.Regions, cfg.BSPerRegion)
	eng, _, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res := eng.Run(); res.Failures != 0 {
		t.Fatalf("LTE-derived run failed: %v", res.FirstErr)
	}
}
