// Package repro is a from-scratch Go reproduction of "SoftMoW: Recursive
// and Reconfigurable Cellular WAN Architecture" (CoNEXT 2014): a recursive
// hierarchical SDN control plane for nation-wide cellular WANs, together
// with every substrate its evaluation depends on — a programmable-switch
// data plane, an OpenFlow-like southbound protocol, a RocketFuel-class
// topology generator, a synthetic LTE workload model, and an interdomain
// path-quality table.
//
// See README.md for the architecture overview, DESIGN.md for the system
// inventory and per-experiment index, and EXPERIMENTS.md for the
// paper-vs-measured comparison. The benchmarks in bench_test.go regenerate
// every table and figure of the paper's evaluation section.
package repro
